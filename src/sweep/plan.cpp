#include "sweep/plan.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/parse.hpp"
#include "geom/stack_spec.hpp"

namespace liquid3d {

const char* to_string(ShardStrategy s) {
  switch (s) {
    case ShardStrategy::kRoundRobin: return "round-robin";
    case ShardStrategy::kCostWeighted: return "cost";
  }
  return "?";
}

ShardStrategy shard_strategy_from_name(std::string_view s) {
  if (s == "round-robin") return ShardStrategy::kRoundRobin;
  if (s == "cost") return ShardStrategy::kCostWeighted;
  throw ConfigError("unknown shard strategy '" + std::string(s) + "'");
}

SuiteConfig to_suite_config(const SweepGridSpec& grid) {
  SuiteConfig sc;
  sc.layer_pairs = grid.layer_pairs;
  sc.duration = grid.duration;
  sc.seed = grid.seed;
  sc.dpm_enabled = grid.dpm_enabled;
  if (grid.grid_rows != 0) sc.base.thermal.grid_rows = grid.grid_rows;
  if (grid.grid_cols != 0) sc.base.thermal.grid_cols = grid.grid_cols;
  sc.stacks = grid.stacks;
  return sc;
}

std::vector<SweepCell> expand_grid(const SweepGridSpec& grid) {
  std::vector<SweepCell> cells;
  cells.reserve(grid.cell_count());
  for (std::size_t s = 0; s < grid.scenarios.size(); ++s) {
    for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
      SweepCell cell;
      cell.index = s * grid.workloads.size() + w;
      cell.scenario = grid.scenarios[s];
      cell.workload = grid.workloads[w];
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

double estimate_cell_cost(const SweepGridSpec& grid,
                          const ScenarioSpec& scenario) {
  // Geometry only — no thermal model is built.  Mirrors the constants of
  // resolve_solver_backend (thermal/solver/backend.cpp).  Binding through
  // apply_scenario picks up the scenario's stack axis, so custom geometries
  // cost-balance by their real size.
  SimulationConfig cfg = to_suite_config(grid).base;
  cfg.layer_pairs = grid.layer_pairs;
  apply_scenario(scenario, cfg, grid.stacks);
  const Stack3D stack = make_simulation_stack(cfg);
  const std::size_t layers = stack.layer_count();
  const double rows = static_cast<double>(cfg.thermal.grid_rows);
  const double cols = static_cast<double>(cfg.thermal.grid_cols);
  const double n = static_cast<double>(layers) * rows * cols;
  const std::size_t b = cfg.thermal.grid_cols * layers;

  const SolverBackend backend = resolve_solver_backend(
      scenario.solver, static_cast<std::size_t>(n), b);
  constexpr double kDirectFactorAmortization = 200.0;
  constexpr double kPcgIterationEstimate = 60.0;
  constexpr double kPcgFlopsPerRow = 22.0;
  const double bw = static_cast<double>(b);
  const double per_row = backend == SolverBackend::kPcg
                             ? kPcgIterationEstimate * kPcgFlopsPerRow
                             : 2.0 * bw + bw * bw / kDirectFactorAmortization;
  // Fluid march: one sweep over every cavity cell per fixed-point pass.
  const double fluid = static_cast<double>(stack.cavity_count()) * rows * cols;

  const SuiteConfig sc = to_suite_config(grid);
  const double ticks =
      static_cast<double>(grid.duration.as_ms()) /
      static_cast<double>(sc.base.sampling_interval.as_ms());
  const double substeps = static_cast<double>(sc.base.thermal_substeps);
  return ticks * substeps * (n * per_row + fluid);
}

std::vector<std::vector<SweepCell>> partition_cells(
    const SweepGridSpec& grid, std::vector<SweepCell> cells,
    std::size_t shard_count, ShardStrategy strategy) {
  LIQUID3D_REQUIRE(shard_count >= 1, "need at least one shard");
  std::vector<std::vector<SweepCell>> shards(shard_count);
  if (strategy == ShardStrategy::kRoundRobin) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      shards[i % shard_count].push_back(std::move(cells[i]));
    }
    return shards;
  }

  // Cost-weighted: LPT greedy.  The cost depends only on the scenario (all
  // workloads run the same tick count), so cells of one scenario spread
  // across shards exactly like round-robin would, but scenario mixes with
  // asymmetric solve costs (deep stacks, PCG backends, fine grids) balance
  // by estimated wall-clock instead of by count.  Deterministic: stable
  // sort by (cost desc, index asc), ties in shard load break toward the
  // lowest shard index.
  std::map<std::string, double> scenario_cost;  // one geometry build per scenario
  std::vector<double> cost(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto [it, inserted] =
        scenario_cost.try_emplace(cells[i].scenario.name, 0.0);
    if (inserted) it->second = estimate_cell_cost(grid, cells[i].scenario);
    cost[i] = it->second;
  }
  std::vector<std::size_t> order(cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Plain sort is fully deterministic here: grid indices are unique, so
  // (cost desc, index asc) is a total order — no stability needed.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cost[a] != cost[b]) return cost[a] > cost[b];
    return cells[a].index < cells[b].index;
  });
  std::vector<double> load(shard_count, 0.0);
  for (const std::size_t i : order) {
    const std::size_t target = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[target] += cost[i];
    shards[target].push_back(std::move(cells[i]));
  }
  // Canonical in-shard order: by grid index, so shard files (and journals)
  // are reproducible byte-for-byte.
  for (std::vector<SweepCell>& shard : shards) {
    std::sort(shard.begin(), shard.end(),
              [](const SweepCell& a, const SweepCell& b) {
                return a.index < b.index;
              });
  }
  return shards;
}

namespace {

const std::vector<std::string>& sweep_cell_csv_header() {
  static const std::vector<std::string> header = [] {
    std::vector<std::string> h = {"cell"};
    const std::vector<std::string>& scenario = scenario_csv_header();
    h.insert(h.end(), scenario.begin(), scenario.end());
    h.emplace_back("workload");
    return h;
  }();
  return header;
}

/// "#suite key=value ..." metadata line.
void parse_suite_comment(const std::string& line, SweepGridSpec& grid) {
  std::istringstream tokens(line.substr(std::string("#suite").size()));
  std::string token;
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    LIQUID3D_REQUIRE(eq != std::string::npos,
                     "malformed #suite token '" + token + "'");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "layer_pairs") {
      grid.layer_pairs = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "duration_ms") {
      grid.duration = SimTime::from_ms(
          static_cast<std::int64_t>(parse_u64(value, key)));
    } else if (key == "seed") {
      grid.seed = parse_u64(value, key);
    } else if (key == "dpm") {
      grid.dpm_enabled = parse_u64(value, key) != 0;
    } else if (key == "grid_rows") {
      grid.grid_rows = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "grid_cols") {
      grid.grid_cols = static_cast<std::size_t>(parse_u64(value, key));
    } else if (key == "stack") {
      // One token per embedded spec; the whole stack file rides inside the
      // percent-encoded value.
      grid.stacks.push_back(decode_stack_spec(value, "#suite stack"));
    }
    // Unknown keys are ignored: newer planners stay readable.
  }
}

}  // namespace

void write_sweep_cells(std::ostream& out, const SweepGridSpec& grid,
                       const std::vector<SweepCell>& cells) {
  out << "#liquid3d-sweep v1\n";
  out << "#suite layer_pairs=" << grid.layer_pairs
      << " duration_ms=" << grid.duration.as_ms() << " seed=" << grid.seed
      << " dpm=" << (grid.dpm_enabled ? 1 : 0)
      << " grid_rows=" << grid.grid_rows << " grid_cols=" << grid.grid_cols;
  for (const StackSpec& spec : grid.stacks) {
    out << " stack=" << encode_stack_spec(spec);
  }
  out << "\n";
  out << to_csv_line(sweep_cell_csv_header());
  for (const SweepCell& cell : cells) {
    std::vector<std::string> row = {std::to_string(cell.index)};
    const std::vector<std::string> scenario = to_csv_row(cell.scenario);
    row.insert(row.end(), scenario.begin(), scenario.end());
    row.push_back(cell.workload);
    out << to_csv_line(row);
  }
}

SweepCellFile read_sweep_cells(std::istream& in, const std::string& source) {
  SweepCellFile file;
  auto fail = [&](std::size_t row_number, const std::string& msg) -> void {
    throw ConfigError(source + " row " + std::to_string(row_number) + ": " +
                      msg);
  };

  // Leading '#' comment lines carry the suite metadata; they are whole
  // physical lines, never part of a CSV record.
  std::size_t row_number = 0;
  while (in.peek() == '#') {
    std::string line;
    std::getline(in, line);
    ++row_number;
    if (line.rfind("#suite", 0) == 0) {
      try {
        parse_suite_comment(line, file.grid);
      } catch (const ConfigError& e) {
        fail(row_number, e.what());
      }
    }
  }

  // Accept the current header and the pre-stack legacy one (no "stack"
  // scenario column) — old plan/shard files and journals stay readable.
  const std::vector<std::string>& header = sweep_cell_csv_header();
  const std::vector<std::string> legacy_header = [&] {
    std::vector<std::string> h = header;
    h.erase(std::find(h.begin(), h.end(), "stack"));
    return h;
  }();
  std::vector<std::string> record;
  ++row_number;
  if (!read_csv_record(in, record) ||
      (record != header && record != legacy_header)) {
    fail(row_number, "missing or mismatched sweep header row");
  }
  const std::size_t arity = record.size();

  while (read_csv_record(in, record)) {
    ++row_number;
    if (record.size() != arity) {
      fail(row_number, "cell row arity mismatch: got " +
                           std::to_string(record.size()) +
                           " columns, expected " + std::to_string(arity));
    }
    SweepCell cell;
    try {
      cell.index = static_cast<std::size_t>(parse_u64(record[0], "column 'cell'"));
      cell.scenario = scenario_from_csv_row(std::vector<std::string>(
          record.begin() + 1, record.end() - 1));
    } catch (const ConfigError& e) {
      fail(row_number, e.what());
    }
    cell.workload = record.back();
    file.cells.push_back(std::move(cell));
  }

  // Reconstruct the grid axes: scenarios/workloads in order of first
  // appearance by grid index.  For a plan file this recovers the full grid;
  // duplicate indices are a corrupt plan.
  std::vector<const SweepCell*> by_index;
  by_index.reserve(file.cells.size());
  for (const SweepCell& c : file.cells) by_index.push_back(&c);
  std::sort(by_index.begin(), by_index.end(),
            [](const SweepCell* a, const SweepCell* b) {
              return a->index < b->index;
            });
  for (std::size_t i = 1; i < by_index.size(); ++i) {
    LIQUID3D_REQUIRE(by_index[i]->index != by_index[i - 1]->index,
                     source + ": duplicate cell index " +
                         std::to_string(by_index[i]->index));
  }
  for (const SweepCell* c : by_index) {
    const auto scenario_seen = [&] {
      for (const ScenarioSpec& s : file.grid.scenarios) {
        if (s.name == c->scenario.name) return true;
      }
      return false;
    }();
    if (!scenario_seen) file.grid.scenarios.push_back(c->scenario);
    if (std::find(file.grid.workloads.begin(), file.grid.workloads.end(),
                  c->workload) == file.grid.workloads.end()) {
      file.grid.workloads.push_back(c->workload);
    }
  }
  return file;
}

void resolve_grid_stacks(SweepGridSpec& grid) {
  for (const ScenarioSpec& s : grid.scenarios) {
    if (s.stack.empty() || is_stack_preset(s.stack)) continue;
    const CoolingType type = s.cooling == CoolingMode::kAir
                                 ? CoolingType::kAir
                                 : CoolingType::kLiquid;
    const bool embedded = [&] {
      for (const StackSpec& spec : grid.stacks) {
        if (spec.name == s.stack) return true;
      }
      return false;
    }();
    // resolve_stack_axis validates cooling compatibility either way; for a
    // file-path axis it also loads the file and renames the spec to the
    // axis string, so workers resolve it by name with no filesystem access.
    StackSpec spec = resolve_stack_axis(s.stack, type, grid.stacks);
    if (!embedded) grid.stacks.push_back(std::move(spec));
  }
}

std::vector<std::string> write_sweep_plan(const SweepGridSpec& grid_in,
                                          std::size_t shard_count,
                                          ShardStrategy strategy,
                                          const std::string& dir,
                                          const std::string& prefix) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  // Embed every file-referenced stack spec before anything is written: the
  // plan and every shard must be self-contained.
  SweepGridSpec grid = grid_in;
  resolve_grid_stacks(grid);
  const std::vector<SweepCell> cells = expand_grid(grid);
  const std::vector<std::vector<SweepCell>> shards =
      partition_cells(grid, cells, shard_count, strategy);

  auto write_file = [&](const std::string& path,
                        const std::vector<SweepCell>& rows) {
    std::ofstream out(path);
    LIQUID3D_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
    write_sweep_cells(out, grid, rows);
    LIQUID3D_REQUIRE(out.good(), "write to '" + path + "' failed");
  };

  write_file(dir + "/" + prefix + "-plan.csv", cells);
  std::vector<std::string> shard_paths;
  shard_paths.reserve(shards.size());
  for (std::size_t k = 0; k < shards.size(); ++k) {
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, "-shard-%03zu.csv", k);
    const std::string path = dir + "/" + prefix + suffix;
    write_file(path, shards[k]);
    shard_paths.push_back(path);
  }
  return shard_paths;
}

SweepCellFile read_sweep_file(const std::string& path) {
  std::ifstream in(path);
  LIQUID3D_REQUIRE(in.good(), "cannot open sweep file '" + path + "'");
  return read_sweep_cells(in, path);
}

}  // namespace liquid3d
