// merge.hpp — fold N shard journals back into one report set.
//
// The merge is deterministic by construction: results key on the cell's
// grid index from the plan, never on which shard ran it, in which order the
// journals are listed, or how many times a resumed worker re-journaled a
// cell.  Because cell seeds are position-independent and every result
// round-trips through %.17g CSV bit-exactly, the merged summaries compare
// == field-by-field against a single-process ExperimentSuite::run of the
// same grid — the contract tests/test_sweep.cpp and the CI smoke job lock
// in byte-for-byte on the exported reports.
//
// Integrity checks (all throw ConfigError):
//   * a cell journaled under an index the plan does not contain;
//   * duplicate entries whose payloads differ (two workers that disagreed —
//     a broken determinism assumption, never silently resolved);
//   * cells missing from every journal (the sweep is incomplete).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sweep/journal.hpp"
#include "sweep/plan.hpp"

namespace liquid3d {

struct SweepMergeStats {
  std::size_t cells = 0;       ///< grid cells merged
  std::size_t entries = 0;     ///< journal entries consumed
  std::size_t duplicates = 0;  ///< identical re-journaled entries dropped
};

/// Merge journal entries (already loaded, any order) against `plan` — the
/// full-grid cell file written by the planner.  Returns per-scenario
/// summaries in plan-grid order, exactly as ExperimentSuite::run would.
[[nodiscard]] std::vector<PolicySummary> merge_sweep_entries(
    const SweepCellFile& plan, const std::vector<JournalEntry>& entries,
    SweepMergeStats* stats = nullptr);

/// Convenience: load `journal_paths` (order-insensitive) and merge against
/// the plan file at `plan_path`.
[[nodiscard]] std::vector<PolicySummary> merge_sweep_journals(
    const std::string& plan_path,
    const std::vector<std::string>& journal_paths,
    SweepMergeStats* stats = nullptr);

}  // namespace liquid3d
