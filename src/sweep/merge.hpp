// merge.hpp — fold N shard journals back into one report set.
//
// The merge is deterministic by construction: results key on the cell's
// grid index from the plan, never on which shard ran it, in which order the
// journals are listed, or how many times a resumed worker re-journaled a
// cell.  Because cell seeds are position-independent and every result
// round-trips through %.17g CSV bit-exactly, the merged summaries compare
// == field-by-field against a single-process ExperimentSuite::run of the
// same grid — the contract tests/test_sweep.cpp and the CI smoke job lock
// in byte-for-byte on the exported reports.
//
// Integrity checks (all throw ConfigError in the default strict mode):
//   * a cell journaled under an index the plan does not contain;
//   * duplicate entries whose payloads differ (two workers that disagreed —
//     a broken determinism assumption, never silently resolved);
//   * cells missing from every journal (the sweep is incomplete);
//   * cells journaled as FAILED (their solves exhausted the worker's
//     escalation ladder).
//
// Degraded mode (allow_partial): FAILED and missing cells become rows of a
// failure manifest instead of errors, and their summary slots hold labeled
// placeholder results; every completed cell still merges to the identical
// bytes strict mode would produce.  An ok record always beats a FAILED
// record for the same cell — a retried shard that eventually succeeded
// wins over an earlier shard that gave up.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "sweep/journal.hpp"
#include "sweep/plan.hpp"

namespace liquid3d {

struct SweepMergeStats {
  std::size_t cells = 0;       ///< grid cells merged
  std::size_t entries = 0;     ///< journal entries consumed
  std::size_t duplicates = 0;  ///< identical re-journaled entries dropped
  std::size_t failed = 0;      ///< cells journaled FAILED (partial mode)
  std::size_t missing = 0;     ///< cells in no journal (partial mode)
};

struct SweepMergeOptions {
  /// Degrade instead of throwing on FAILED/missing cells; see the file
  /// comment.  Off by default: a complete sweep merges byte-identically
  /// whether or not this is set.
  bool allow_partial = false;
};

/// One row of the degraded merge's failure manifest.
struct SweepFailure {
  std::size_t cell = 0;
  std::string scenario;
  std::string workload;
  std::string error;          ///< journal error text, or "missing …"
  std::size_t attempts = 0;   ///< ladder attempts (0 for missing cells)
};

/// Merge journal entries (already loaded, any order) against `plan` — the
/// full-grid cell file written by the planner.  Returns per-scenario
/// summaries in plan-grid order, exactly as ExperimentSuite::run would.
/// With options.allow_partial, `manifest` (when non-null) receives the
/// failed/missing cells in grid order.
[[nodiscard]] std::vector<PolicySummary> merge_sweep_entries(
    const SweepCellFile& plan, const std::vector<JournalEntry>& entries,
    SweepMergeStats* stats = nullptr, const SweepMergeOptions& options = {},
    std::vector<SweepFailure>* manifest = nullptr);

/// Convenience: load `journal_paths` (order-insensitive) and merge against
/// the plan file at `plan_path`.
[[nodiscard]] std::vector<PolicySummary> merge_sweep_journals(
    const std::string& plan_path,
    const std::vector<std::string>& journal_paths,
    SweepMergeStats* stats = nullptr, const SweepMergeOptions& options = {},
    std::vector<SweepFailure>* manifest = nullptr);

/// Write the manifest as CSV (`cell,scenario,workload,error,attempts`).
void write_failure_manifest_csv(std::ostream& out,
                                const std::vector<SweepFailure>& manifest);

}  // namespace liquid3d
