#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

WorkloadGenerator::WorkloadGenerator(BenchmarkSpec benchmark, std::size_t core_count,
                                     std::uint64_t seed, GeneratorConfig cfg)
    : benchmark_(std::move(benchmark)), core_count_(core_count), cfg_(cfg), rng_(seed) {
  LIQUID3D_REQUIRE(core_count > 0, "workload needs at least one core");
  LIQUID3D_REQUIRE(benchmark_.avg_utilization >= 0.0 && benchmark_.avg_utilization <= 1.0,
                   "benchmark utilization must be a fraction");
  // Log-normal modulation with unit mean and CV = burstiness:
  //   sigma^2 = ln(1 + CV^2).
  sigma_stationary_ =
      std::sqrt(std::log(1.0 + benchmark_.burstiness * benchmark_.burstiness));
}

void WorkloadGenerator::set_phase_schedule(std::vector<PhaseChange> schedule) {
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    LIQUID3D_REQUIRE(schedule[i].at > schedule[i - 1].at,
                     "phase schedule must be sorted by time");
  }
  schedule_ = std::move(schedule);
}

double WorkloadGenerator::offered_load() const {
  return benchmark_.avg_utilization * static_cast<double>(core_count_);
}

double WorkloadGenerator::phase_scale(SimTime now) const {
  double scale = 1.0;
  for (const PhaseChange& p : schedule_) {
    if (now >= p.at) scale = p.utilization_scale;
  }
  return scale;
}

void WorkloadGenerator::advance_modulation(double dt_s) {
  const double a = std::exp(-dt_s / cfg_.modulation_time_constant_s);
  const double innovation_std = sigma_stationary_ * std::sqrt(1.0 - a * a);
  log_modulation_ = a * log_modulation_ + innovation_std * rng_.normal();
}

double WorkloadGenerator::sample_length_ms() {
  const double sigma = cfg_.sigma_log_length;
  const double mu = std::log(cfg_.mean_thread_ms) - 0.5 * sigma * sigma;
  const double len = std::exp(mu + sigma * rng_.normal());
  return std::clamp(len, cfg_.min_thread_ms, cfg_.max_thread_ms);
}

std::vector<Thread> WorkloadGenerator::tick(SimTime now, SimTime interval) {
  const double dt_s = interval.as_s();
  advance_modulation(dt_s);

  const double modulator =
      std::exp(-0.5 * sigma_stationary_ * sigma_stationary_ + log_modulation_);
  const double mean_len_s = cfg_.mean_thread_ms * 1e-3;
  double rate = benchmark_.avg_utilization * static_cast<double>(core_count_) /
                mean_len_s * modulator * phase_scale(now);
  const double rate_cap =
      cfg_.max_load_factor * static_cast<double>(core_count_) / mean_len_s;
  rate = std::min(rate, rate_cap);

  // Poisson(rate * dt) arrivals (Knuth; the per-tick mean is modest).
  const double lambda = rate * dt_s;
  std::size_t count = 0;
  if (lambda > 0.0) {
    const double limit = std::exp(-lambda);
    double product = rng_.uniform();
    while (product > limit) {
      ++count;
      product *= rng_.uniform();
    }
  }

  std::vector<Thread> arrivals;
  arrivals.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Thread t;
    t.id = next_id_++;
    t.arrival = now;
    t.total_length = SimTime::from_s(sample_length_ms() * 1e-3);
    t.remaining = t.total_length;
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace liquid3d
