// thread.hpp — the unit of work the schedulers move around.
//
// The paper assumes short threads (a few to several hundred milliseconds of
// continuous execution, as reported for real UltraSPARC T1 server loads) of
// similar lengths, which is why queue *length in threads* is the balancing
// metric (Sec. IV, Job Scheduling).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace liquid3d {

struct Thread {
  std::uint64_t id = 0;
  SimTime arrival{};
  SimTime total_length{};
  SimTime remaining{};
  std::uint32_t migrations = 0;
};

}  // namespace liquid3d
