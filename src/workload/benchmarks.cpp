#include "workload/benchmarks.hpp"

#include <algorithm>

namespace liquid3d {

namespace {
// Largest combined miss rate in Table II (Web-high: 67.6 + 288.7).
constexpr double kMaxCombinedMiss = 356.3;
// Largest FP rate in Table II (Web-med / Web-high: 31.2).
constexpr double kMaxFp = 31.2;
}  // namespace

double BenchmarkSpec::activity_factor() const {
  // Map fp_per_100k in [0, kMaxFp] to [0.92, 1.08].
  const double x = std::clamp(fp_per_100k / kMaxFp, 0.0, 1.0);
  return 0.92 + 0.16 * x;
}

double BenchmarkSpec::memory_intensity() const {
  return std::clamp((l2_i_miss + l2_d_miss) / kMaxCombinedMiss, 0.0, 1.0);
}

const std::vector<BenchmarkSpec>& table2_benchmarks() {
  // id, name, util%, I-miss, D-miss, FP, burstiness.
  static const std::vector<BenchmarkSpec> kTable = {
      {1, "Web-med", 0.5312, 12.9, 167.7, 31.2, 0.40},
      {2, "Web-high", 0.9287, 67.6, 288.7, 31.2, 0.15},
      {3, "Database", 0.1775, 6.5, 102.3, 5.9, 0.45},
      {4, "Web&DB", 0.7512, 21.5, 115.3, 24.1, 0.30},
      {5, "gcc", 0.1525, 31.7, 96.2, 18.1, 0.25},
      {6, "gzip", 0.0900, 2.0, 57.0, 0.2, 0.20},
      {7, "MPlayer", 0.0650, 9.6, 136.0, 1.0, 0.15},
      {8, "MPlayer&Web", 0.2662, 9.1, 66.8, 29.9, 0.35},
  };
  return kTable;
}

std::optional<BenchmarkSpec> find_benchmark(const std::string& name) {
  for (const BenchmarkSpec& b : table2_benchmarks()) {
    if (b.name == name) return b;
  }
  return std::nullopt;
}

}  // namespace liquid3d
