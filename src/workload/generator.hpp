// generator.hpp — synthetic trace generation matched to Table II.
//
// We cannot replay the authors' half-hour UltraSPARC traces (never released),
// so we synthesize statistically matched arrivals:
//   * thread lengths: log-normal, clamped to [5 ms, 600 ms] ("a few to
//     several hundred milliseconds"), mean ~120 ms;
//   * arrivals: Poisson with a slowly varying rate.  The rate modulation is
//     a mean-reverting AR(1) in log space whose stationary coefficient of
//     variation equals the benchmark's burstiness, with a time constant of
//     ~8 s — slow enough that the ARMA forecaster sees serially correlated
//     load (the property the paper's predictor exploits), fast enough that
//     the flow controller has real work to do;
//   * the long-run offered load equals avg_utilization x core_count.
//
// A phase schedule can rescale the offered load at given times to create the
// day/night-style trend breaks that exercise the SPRT rebuild path.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "workload/benchmarks.hpp"
#include "workload/thread.hpp"

namespace liquid3d {

struct GeneratorConfig {
  double mean_thread_ms = 120.0;
  double sigma_log_length = 0.6;  ///< log-normal shape for thread lengths
  double min_thread_ms = 5.0;
  double max_thread_ms = 600.0;
  double modulation_time_constant_s = 8.0;
  /// Offered load is clamped to this multiple of capacity so bursty traces
  /// cannot request more work than the machine can ever drain.
  double max_load_factor = 0.98;
};

/// One step change of the offered load (for trend-break experiments).
struct PhaseChange {
  SimTime at{};
  double utilization_scale = 1.0;  ///< multiplies the benchmark utilization
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(BenchmarkSpec benchmark, std::size_t core_count,
                    std::uint64_t seed, GeneratorConfig cfg = {});

  /// Threads arriving within (now, now + interval].
  [[nodiscard]] std::vector<Thread> tick(SimTime now, SimTime interval);

  void set_phase_schedule(std::vector<PhaseChange> schedule);

  [[nodiscard]] const BenchmarkSpec& benchmark() const { return benchmark_; }
  [[nodiscard]] std::size_t core_count() const { return core_count_; }
  /// Long-run offered load in units of cores (utilization * core count).
  [[nodiscard]] double offered_load() const;
  [[nodiscard]] std::uint64_t threads_generated() const { return next_id_; }

 private:
  [[nodiscard]] double sample_length_ms();
  void advance_modulation(double dt_s);
  [[nodiscard]] double phase_scale(SimTime now) const;

  BenchmarkSpec benchmark_;
  std::size_t core_count_;
  GeneratorConfig cfg_;
  Rng rng_;
  double log_modulation_ = 0.0;  ///< AR(1) state in log space
  double sigma_stationary_ = 0.0;
  std::vector<PhaseChange> schedule_;
  std::uint64_t next_id_ = 0;
};

}  // namespace liquid3d
