// benchmarks.hpp — the paper's workload set (Table II).
//
// The original traces were collected on an UltraSPARC T1 with mpstat/DTrace
// over half-hour runs of real applications (SLAMD web serving, MySQL with
// sysbench, gcc, gzip, mplayer).  We embed the published per-benchmark
// statistics and synthesize traces that match them; see generator.hpp.
// Misses and FP counts are per 100K instructions, exactly as printed.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace liquid3d {

struct BenchmarkSpec {
  int id = 0;                 ///< row number in Table II
  std::string name;
  double avg_utilization = 0.0;  ///< system average, fraction of capacity
  double l2_i_miss = 0.0;        ///< per 100K instructions
  double l2_d_miss = 0.0;        ///< per 100K instructions
  double fp_per_100k = 0.0;      ///< floating point instructions per 100K

  /// Relative burstiness of the offered load (coefficient of variation of
  /// the slow load modulation).  Not printed in Table II; assigned per
  /// workload class: interactive web/db traffic is bursty, batch jobs and
  /// media decoding are steady.
  double burstiness = 0.3;

  /// Switching-activity factor for core power: FP-heavy code exercises the
  /// wide datapath and runs hotter.  Normalized so the Table II extremes map
  /// to roughly ±8 % around nominal.
  [[nodiscard]] double activity_factor() const;

  /// Memory intensity in [0, 1] from the combined L2 miss rates; drives the
  /// crossbar power scaling.
  [[nodiscard]] double memory_intensity() const;
};

/// All eight benchmarks of Table II, in table order.
[[nodiscard]] const std::vector<BenchmarkSpec>& table2_benchmarks();

/// Look up by the paper's name (e.g. "gzip", "Web-high").
[[nodiscard]] std::optional<BenchmarkSpec> find_benchmark(const std::string& name);

}  // namespace liquid3d
