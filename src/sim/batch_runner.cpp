#include "sim/batch_runner.hpp"

#include <cstdint>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace liquid3d {

std::size_t BatchRunner::add(SimulationConfig cfg) {
  return add(std::make_unique<SimulationSession>(std::move(cfg)));
}

std::size_t BatchRunner::add(std::unique_ptr<SimulationSession> session) {
  LIQUID3D_REQUIRE(session != nullptr, "cannot add a null session");
  sessions_.push_back(std::move(session));
  return sessions_.size() - 1;
}

std::vector<SimulationResult> BatchRunner::run() {
  LIQUID3D_REQUIRE(!sessions_.empty(), "batch runner has no sessions");

  // init() before grouping: the warm start is a per-session steady solve
  // (identical to the serial path), and grouping only needs the topology
  // fingerprint, which is fixed at construction.
  for (auto& s : sessions_) s->init();

  // Lockstep compatibility: identical system matrix for every substep size
  // (topology fingerprint) and an identical tick structure (sampling
  // interval in the exact millisecond domain + substep count).
  using GroupKey = std::tuple<std::uint64_t, std::int64_t, std::size_t>;
  std::map<GroupKey, std::vector<SimulationSession*>> groups;
  for (auto& s : sessions_) {
    groups[{s->thermal().topology_fingerprint(),
            s->config().sampling_interval.as_ms(), s->substep_count()}]
        .push_back(s.get());
  }
  group_count_ = groups.size();

  // Batch observability: how often lockstep grouping fires and how wide
  // the groups are is the whole economics of the shared-factorization
  // path (out of band — counters/timers only).
  static obs::Counter& groups_c =
      obs::Registry::global().counter("liquid3d_batch_groups_total");
  static obs::Histogram& group_size_h =
      obs::Registry::global().histogram("liquid3d_batch_group_sessions");
  static obs::Histogram& step_h =
      obs::Registry::global().histogram("liquid3d_batch_step_seconds");
  groups_c.add(groups.size());
  if (obs::enabled()) {
    for (const auto& [key, members] : groups) {
      group_size_h.record_always(static_cast<double>(members.size()));
    }
  }

  for (auto& [key, members] : groups) {
    // Sessions may have different durations: finished members drop out of
    // the lockstep set and the rest keep sharing a (smaller) batch.
    for (;;) {
      active_.clear();
      for (SimulationSession* s : members) {
        if (!s->done()) active_.push_back(s);
      }
      if (active_.empty()) break;
      for (SimulationSession* s : active_) s->begin_tick();
      models_.clear();
      for (SimulationSession* s : active_) models_.push_back(&s->thermal());
      const double sub_dt = active_.front()->substep_dt();
      const std::size_t substeps = active_.front()->substep_count();
      for (std::size_t sub = 0; sub < substeps; ++sub) {
        obs::ScopedTimer t(step_h);
        stepper_.step(models_, sub_dt);
      }
      for (SimulationSession* s : active_) s->finish_tick();
    }
  }

  std::vector<SimulationResult> results;
  results.reserve(sessions_.size());
  for (const auto& s : sessions_) results.push_back(s->result());
  return results;
}

}  // namespace liquid3d
