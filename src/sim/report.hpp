// report.hpp — structured export of simulation results.
//
// SimulationResult and PolicySummary values flatten to plain rows (the
// common/csv.hpp convention: a header vector plus string rows) and to JSON,
// so examples, sweep shards, and external plotting consume one format
// instead of each bench hand-rolling printf tables.  Doubles are written
// with %.17g — round-trippable, so a re-parsed shard compares bit-exactly
// against the in-process result.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace liquid3d {

/// Column names of one SimulationResult row (label, benchmark, then every
/// metric in declaration order).
[[nodiscard]] const std::vector<std::string>& simulation_result_csv_header();
[[nodiscard]] std::vector<std::string> to_csv_row(const SimulationResult& r);

/// Inverse of to_csv_row.  Exact: numbers were written with %.17g, so the
/// parsed result compares == against the in-process original, field by
/// field.  Throws ConfigError naming the offending column on a malformed
/// row.
[[nodiscard]] SimulationResult simulation_result_from_csv_row(
    const std::vector<std::string>& row);

/// True when every field of `a` and `b` (strings, counts, doubles) is
/// exactly equal — the merge path's duplicate-detection predicate.
[[nodiscard]] bool results_identical(const SimulationResult& a,
                                     const SimulationResult& b);

/// Header row + one row per result.  Fields containing commas, quotes, or
/// newlines are double-quoted (RFC-4180 style) — scenario labels are
/// user-supplied.
void write_results_csv(std::ostream& out,
                       const std::vector<SimulationResult>& results);
/// Inverse of write_results_csv (the reader the sweep merge path uses):
/// validates the header row, then parses one result per record.  Errors
/// report the 1-based row number and offending column.
[[nodiscard]] std::vector<SimulationResult> read_results_csv(std::istream& in);
/// JSON array of objects, one per result.
void write_results_json(std::ostream& out,
                        const std::vector<SimulationResult>& results);

/// Flattened per-workload rows, each prefixed with its summary's label.
void write_summaries_csv(std::ostream& out,
                         const std::vector<PolicySummary>& summaries);
/// JSON array of {label, aggregates, per_workload[]} objects.
void write_summaries_json(std::ostream& out,
                          const std::vector<PolicySummary>& summaries);

}  // namespace liquid3d
