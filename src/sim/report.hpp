// report.hpp — structured export of simulation results.
//
// SimulationResult and PolicySummary values flatten to plain rows (the
// common/csv.hpp convention: a header vector plus string rows) and to JSON,
// so examples, sweep shards, and external plotting consume one format
// instead of each bench hand-rolling printf tables.  Doubles are written
// with %.17g — round-trippable, so a re-parsed shard compares bit-exactly
// against the in-process result.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace liquid3d {

/// Column names of one SimulationResult row (label, benchmark, then every
/// metric in declaration order).
[[nodiscard]] const std::vector<std::string>& simulation_result_csv_header();
[[nodiscard]] std::vector<std::string> to_csv_row(const SimulationResult& r);

/// Header row + one row per result.  Fields containing the separator are
/// double-quoted (RFC-4180 style).
void write_results_csv(std::ostream& out,
                       const std::vector<SimulationResult>& results);
/// JSON array of objects, one per result.
void write_results_json(std::ostream& out,
                        const std::vector<SimulationResult>& results);

/// Flattened per-workload rows, each prefixed with its summary's label.
void write_summaries_csv(std::ostream& out,
                         const std::vector<PolicySummary>& summaries);
/// JSON array of {label, aggregates, per_workload[]} objects.
void write_summaries_json(std::ostream& out,
                          const std::vector<PolicySummary>& summaries);

}  // namespace liquid3d
