#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/error.hpp"
#include "control/characterize.hpp"

namespace liquid3d {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kLoadBalancing: return "LB";
    case Policy::kReactiveMigration: return "Mig";
    case Policy::kTalb: return "TALB";
  }
  return "?";
}

const char* to_string(CoolingMode m) {
  switch (m) {
    case CoolingMode::kAir: return "Air";
    case CoolingMode::kLiquidMax: return "Max";
    case CoolingMode::kLiquidVar: return "Var";
  }
  return "?";
}

std::string policy_label(Policy p, CoolingMode m) {
  return std::string(to_string(p)) + " (" + to_string(m) + ")";
}

namespace {

std::unique_ptr<Scheduler> make_scheduler(const SimulationConfig& cfg) {
  switch (cfg.policy) {
    case Policy::kLoadBalancing: {
      LoadBalancerParams p = cfg.load_balancer;
      if (!cfg.core_bias.empty()) p.core_bias = cfg.core_bias;
      return make_load_balancer(std::move(p));
    }
    case Policy::kReactiveMigration: {
      MigrationParams p = cfg.migration;
      if (!cfg.core_bias.empty()) p.lb.core_bias = cfg.core_bias;
      return make_reactive_migration(std::move(p));
    }
    case Policy::kTalb:
      // TALB balances on *thermal* weights; a static dispatch bias would be
      // silently ignored, so reject it instead of mislabeling the run.
      LIQUID3D_REQUIRE(cfg.core_bias.empty(),
                       "core_bias is not supported by the TALB policy");
      return make_talb(cfg.talb);
  }
  LIQUID3D_ASSERT(false, "unknown policy");
}

Stack3D make_stack(const SimulationConfig& cfg) {
  const CoolingType type =
      cfg.cooling == CoolingMode::kAir ? CoolingType::kAir : CoolingType::kLiquid;
  return make_niagara_stack(cfg.layer_pairs, type);
}

}  // namespace

std::shared_ptr<const FlowLut> Simulator::build_flow_lut(const SimulationConfig& cfg) {
  LIQUID3D_REQUIRE(cfg.cooling != CoolingMode::kAir,
                   "flow LUT only applies to liquid cooling");
  const Stack3D stack = make_stack(cfg);
  // One independent harness (and thermal model) per characterization worker.
  auto factory = [&cfg, &stack]() {
    return std::make_unique<CharacterizationHarness>(
        stack, cfg.thermal, cfg.power, PumpModel::laing_ddc(), cfg.delivery_mode);
  };
  return std::make_shared<const FlowLut>(
      characterize_flow_lut(factory, cfg.metrics.target_c - cfg.manager.lut_margin_c,
                            25, cfg.characterization_threads));
}

std::shared_ptr<const TalbWeightTable> Simulator::build_talb_weights(
    const SimulationConfig& cfg) {
  const Stack3D stack = make_stack(cfg);
  const bool liquid = cfg.cooling != CoolingMode::kAir;
  std::optional<CharacterizationHarness> harness;
  if (liquid) {
    harness.emplace(stack, cfg.thermal, cfg.power, PumpModel::laing_ddc(),
                    cfg.delivery_mode);
  } else {
    harness.emplace(stack, cfg.thermal, cfg.power);
  }
  const std::size_t setting = liquid ? harness->setting_count() / 2 : 0;
  const double t_ref =
      liquid ? cfg.thermal.inlet_temperature : cfg.thermal.ambient_temperature;

  const std::vector<double> levels = {0.3, 0.6, 0.9};
  std::vector<double> tmax_at_level;
  std::vector<std::vector<double>> weights_at_level;
  for (double u : levels) {
    const std::vector<double> temps = harness->steady_core_temps(u, setting);
    tmax_at_level.push_back(*std::max_element(temps.begin(), temps.end()));
    weights_at_level.push_back(TalbWeightTable::weights_from_temps(temps, t_ref));
  }

  std::vector<TalbWeightTable::Band> bands;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double upper = (i + 1 < levels.size())
                             ? 0.5 * (tmax_at_level[i] + tmax_at_level[i + 1])
                             : std::numeric_limits<double>::infinity();
    bands.push_back({upper, weights_at_level[i]});
  }
  return std::make_shared<const TalbWeightTable>(std::move(bands));
}

Simulator::Simulator(SimulationConfig config)
    : cfg_(std::move(config)),
      stack_(make_stack(cfg_)),
      thermal_(stack_, cfg_.thermal),
      power_(cfg_.power),
      pump_(PumpModel::laing_ddc()),
      cores_(enumerate_sites(stack_, BlockType::kCore)),
      generator_(cfg_.benchmark, enumerate_sites(stack_, BlockType::kCore).size(),
                 cfg_.seed, cfg_.generator),
      queues_(cores_.size()),
      scheduler_(make_scheduler(cfg_)),
      dpm_(cores_.size(), cfg_.dpm) {
  LIQUID3D_REQUIRE(cfg_.core_bias.empty() || cfg_.core_bias.size() == cores_.size(),
                   "core_bias arity must equal the system's core count");
  generator_.set_phase_schedule(cfg_.phases);

  const bool liquid = cfg_.cooling != CoolingMode::kAir;
  if (liquid) {
    const MicrochannelModel channels(stack_.cavity(), cfg_.thermal.coolant,
                                     cfg_.thermal.channel_params);
    delivery_.emplace(pump_, cfg_.delivery_mode, channels, stack_.width(),
                      stack_.cavity_count());

    if (!cfg_.flow_lut) cfg_.flow_lut = build_flow_lut(cfg_);
    if (!cfg_.talb_weights) {
      cfg_.talb_weights = cfg_.policy == Policy::kTalb
                              ? build_talb_weights(cfg_)
                              : std::make_shared<const TalbWeightTable>(
                                    TalbWeightTable::uniform(cores_.size()));
    }
    ThermalManagerConfig mc = cfg_.manager;
    mc.variable_flow = cfg_.cooling == CoolingMode::kLiquidVar;
    std::optional<ValveNetwork> valves;
    if (cfg_.manager.valve_network) {
      valves.emplace(*delivery_, cfg_.manager.valves);
    }
    manager_ = std::make_unique<ThermalManager>(*cfg_.flow_lut, *cfg_.talb_weights,
                                                pump_, mc, std::move(valves));
  } else if (!cfg_.talb_weights) {
    cfg_.talb_weights = cfg_.policy == Policy::kTalb
                            ? build_talb_weights(cfg_)
                            : std::make_shared<const TalbWeightTable>(
                                  TalbWeightTable::uniform(cores_.size()));
  }
}

void Simulator::apply_power(const std::vector<double>& busy, const BenchmarkSpec& bench) {
  double mean_busy = 0.0;
  for (double b : busy) mean_busy += b;
  mean_busy /= static_cast<double>(busy.size());

  // Global core index per (layer, block) follows enumerate_sites order.
  std::size_t core_cursor = 0;
  double chip = 0.0;
  for (std::size_t l = 0; l < stack_.layer_count(); ++l) {
    const Floorplan& fp = stack_.layer(l).floorplan;
    std::vector<double> watts(fp.block_count(), 0.0);
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      const Block& blk = fp.block(b);
      const double t_blk = thermal_.block_mean_temperature(l, b);
      switch (blk.type) {
        case BlockType::kCore: {
          const double core_busy = busy.at(core_cursor);
          const CoreState state =
              core_busy > 0.0 ? CoreState::kActive : dpm_.state(core_cursor);
          watts[b] = power_.core_power(state, core_busy, bench.activity_factor(), t_blk);
          ++core_cursor;
          break;
        }
        case BlockType::kL2Cache:
          watts[b] = power_.l2_power(t_blk);
          break;
        case BlockType::kCrossbar:
          watts[b] = power_.crossbar_power(mean_busy, bench.memory_intensity(), t_blk);
          break;
        case BlockType::kMisc:
          watts[b] = power_.misc_power(blk.rect.area(), t_blk);
          break;
      }
      chip += watts[b];
    }
    thermal_.set_block_power(l, watts);
  }
  last_chip_watts_ = chip;
}

std::vector<double> Simulator::read_core_temps() const {
  std::vector<double> temps;
  temps.reserve(cores_.size());
  for (const BlockSite& site : cores_) {
    temps.push_back(thermal_.block_temperature(site.layer, site.block));
  }
  return temps;
}

std::vector<double> Simulator::read_unit_temps() const {
  std::vector<double> temps;
  for (std::size_t l = 0; l < stack_.layer_count(); ++l) {
    const Floorplan& fp = stack_.layer(l).floorplan;
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      temps.push_back(thermal_.block_temperature(l, b));
    }
  }
  return temps;
}

double Simulator::apply_flow_decision() {
  if (!delivery_) return 1.0;
  if (manager_->has_valve_network()) {
    manager_->cavity_flows_into(flow_scratch_);
    thermal_.set_cavity_flow(flow_scratch_);
    const auto [lo, hi] = std::minmax_element(flow_scratch_.begin(), flow_scratch_.end());
    return lo->m3_per_s() > 0.0 ? hi->m3_per_s() / lo->m3_per_s() : 1.0;
  }
  thermal_.set_cavity_flow(
      delivery_->per_cavity(manager_->actuator().effective_setting()));
  return 1.0;
}

void Simulator::warm_start() {
  // Initialize from the steady state of the benchmark's average load
  // ("all simulations are initialized with steady state temperature
  // values", Sec. V).
  const double u = cfg_.benchmark.avg_utilization;
  std::vector<double> busy(cores_.size(), u);
  thermal_.initialize(cfg_.thermal.ambient_temperature);
  if (delivery_) apply_flow_decision();  // valves start uniform
  for (int i = 0; i < 3; ++i) {
    apply_power(busy, cfg_.benchmark);  // leakage fixed point
    thermal_.solve_steady_state();
  }
}

SimulationResult Simulator::run() {
  warm_start();

  const SimTime dt = cfg_.sampling_interval;
  const double dt_s = dt.as_s();
  const std::size_t ticks =
      static_cast<std::size_t>(cfg_.duration.as_ms() / dt.as_ms());
  const std::size_t horizon = cfg_.manager.predictor.horizon;

  MetricsCollector metrics(cores_.size(), cfg_.metrics);
  EnergyAccountant energy;
  RunningStats busy_stats;
  RunningStats setting_stats;
  RunningStats forecast_err2;
  RunningStats skew_stats;
  std::deque<std::pair<std::size_t, double>> pending_forecasts;
  std::vector<double> cavity_tmax;  // per-cavity observations (valve control)

  const std::vector<double> uniform_weights(cores_.size(), 1.0);

  for (std::size_t tick = 0; tick < ticks; ++tick) {
    const SimTime now = SimTime::from_ms(static_cast<std::int64_t>(tick) * dt.as_ms());

    std::vector<Thread> arrivals = generator_.tick(now, dt);

    SchedulerContext ctx;
    ctx.now = now;
    ctx.core_temperature = read_core_temps();
    const double tmax_pre =
        *std::max_element(ctx.core_temperature.begin(), ctx.core_temperature.end());
    ctx.thermal_weight = cfg_.policy == Policy::kTalb && cfg_.talb_weights
                             ? cfg_.talb_weights->lookup(tmax_pre)
                             : uniform_weights;

    scheduler_->manage(queues_, ctx);
    scheduler_->dispatch(std::move(arrivals), queues_, ctx);

    const CoreQueues::TickResult exec = queues_.execute(dt);
    dpm_.tick(exec.busy_fraction, dt);
    apply_power(exec.busy_fraction, cfg_.benchmark);

    if (delivery_) skew_stats.add(apply_flow_decision());
    const double sub_dt = dt_s / static_cast<double>(cfg_.thermal_substeps);
    for (std::size_t s = 0; s < cfg_.thermal_substeps; ++s) {
      thermal_.step(sub_dt);
    }

    const std::vector<double> core_temps = read_core_temps();
    const std::vector<double> unit_temps = read_unit_temps();
    const double tmax = *std::max_element(core_temps.begin(), core_temps.end());

    double pump_watts = 0.0;
    std::size_t setting = 0;
    if (manager_) {
      if (manager_->has_valve_network()) {
        thermal_.cavity_max_temperatures(cavity_tmax);
      }
      setting = manager_->update(now + dt, tmax, cavity_tmax);
      pump_watts = manager_->actuator().power();
      setting_stats.add(static_cast<double>(manager_->actuator().effective_setting()));
      if (cfg_.cooling == CoolingMode::kLiquidVar && !cfg_.manager.reactive) {
        pending_forecasts.emplace_back(tick + horizon, manager_->last_forecast());
      }
    }
    while (!pending_forecasts.empty() && pending_forecasts.front().first <= tick) {
      const double err = pending_forecasts.front().second - tmax;
      forecast_err2.add(err * err);
      pending_forecasts.pop_front();
    }

    energy.add_interval(last_chip_watts_, pump_watts, dt_s);
    metrics.add_sample(unit_temps, core_temps);
    for (double b : exec.busy_fraction) busy_stats.add(b);

    if (trace_) {
      SampleTrace t;
      t.now = now + dt;
      t.tmax = tmax;
      t.forecast = manager_ ? manager_->last_forecast() : tmax;
      t.pump_setting = setting;
      t.flow_ml_per_min =
          delivery_
              ? delivery_->per_cavity(manager_->actuator().effective_setting())
                    .ml_per_min()
              : 0.0;
      t.chip_watts = last_chip_watts_;
      t.pump_watts = pump_watts;
      double mean_busy = 0.0;
      for (double b : exec.busy_fraction) mean_busy += b;
      t.mean_busy = mean_busy / static_cast<double>(exec.busy_fraction.size());
      t.queued_threads = queues_.total_queued();
      trace_(t);
    }
  }

  SimulationResult r;
  r.label = policy_label(cfg_.policy, cfg_.cooling);
  r.benchmark = cfg_.benchmark.name;
  r.hotspot_percent = metrics.hotspot_percent();
  r.hotspot_max_sample = metrics.tmax_stats().max();
  r.above_target_percent = metrics.above_target_percent();
  r.spatial_gradient_percent = metrics.spatial_gradient_percent();
  r.thermal_cycles_per_1000 = metrics.thermal_cycles_per_1000();
  r.avg_tmax = metrics.tmax_stats().mean();
  r.chip_energy_j = energy.chip_joules();
  r.pump_energy_j = energy.pump_joules();
  r.total_energy_j = energy.total_joules();
  r.throughput_per_s =
      static_cast<double>(queues_.completed_total()) / cfg_.duration.as_s();
  r.avg_utilization = busy_stats.mean();
  r.migrations = scheduler_->migration_count();
  r.pump_transitions = manager_ ? manager_->actuator().transition_count() : 0;
  r.valve_transitions = manager_ && manager_->valves()
                            ? manager_->valves()->transition_count()
                            : 0;
  r.avg_flow_skew = skew_stats.count() > 0 ? skew_stats.mean() : 1.0;
  r.predictor_rebuilds = manager_ ? manager_->predictor().rebuild_count() : 0;
  r.forecast_rmse = std::sqrt(forecast_err2.mean());
  r.avg_pump_setting = setting_stats.mean();
  r.elapsed_s = cfg_.duration.as_s();
  return r;
}

}  // namespace liquid3d
