#include "sim/simulator.hpp"

#include "sim/characterization_cache.hpp"

namespace liquid3d {

std::shared_ptr<const FlowLut> Simulator::build_flow_lut(const SimulationConfig& cfg) {
  return CharacterizationCache::global().flow_lut(cfg);
}

std::shared_ptr<const TalbWeightTable> Simulator::build_talb_weights(
    const SimulationConfig& cfg) {
  return CharacterizationCache::global().talb_weights(cfg);
}

}  // namespace liquid3d
