// session.hpp — the steppable full-system simulation: workload + scheduler +
// DPM + power + 3D thermal model + the joint flow-controller/TALB technique.
//
// One SimulationSession runs one (system, cooling, policy, workload) cell of
// the Sec. V evaluation grid, sampled every 100 ms and initialized from the
// steady state — but unlike the legacy monolithic `Simulator::run()`, the
// loop is externalized:
//
//   SimulationSession s(cfg);
//   s.init();                       // steady-state warm start, reset metrics
//   while (s.step()) { ... }        // one sampling tick at a time
//   SimulationResult r = s.result();
//
// Everything the loop touches is inspectable between steps (temperature
// field, power, manager decisions, queues), and each tick decomposes further
// into begin_tick() / <thermal substeps> / finish_tick() so a BatchRunner
// can co-advance many sessions through one shared factorization
// (sim/batch_runner.hpp).  `Simulator` (sim/simulator.hpp) survives as a
// thin compatibility loop over this class.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/thermal_manager.hpp"
#include "coolant/flow.hpp"
#include "geom/sites.hpp"
#include "geom/stack.hpp"
#include "geom/stack_spec.hpp"
#include "power/dpm.hpp"
#include "power/energy.hpp"
#include "power/power_model.hpp"
#include "sched/scheduler.hpp"
#include "sim/metrics.hpp"
#include "thermal/model3d.hpp"
#include "workload/generator.hpp"

namespace liquid3d {

/// Scheduling policy (Sec. V).
enum class Policy { kLoadBalancing, kReactiveMigration, kTalb };
/// Cooling configuration (Sec. V): air, liquid at worst-case flow, or
/// liquid with the paper's variable-flow controller.
enum class CoolingMode { kAir, kLiquidMax, kLiquidVar };

[[nodiscard]] const char* to_string(Policy p);
[[nodiscard]] const char* to_string(CoolingMode m);
/// Paper-style label, e.g. "TALB (Var)".
[[nodiscard]] std::string policy_label(Policy p, CoolingMode m);

struct SimulationConfig {
  /// Legacy alias for the Niagara presets: 1 -> 2-layer system (8 cores),
  /// 2 -> 4-layer system (16 cores).  Ignored when `stack` is set.
  std::size_t layer_pairs = 1;
  /// Declarative stack geometry — the single source of truth when set
  /// (resolved_stack_spec validates it against `cooling`).  Unset = the
  /// Niagara preset selected by `layer_pairs`.
  std::optional<StackSpec> stack;
  CoolingMode cooling = CoolingMode::kLiquidVar;
  Policy policy = Policy::kTalb;
  /// Display label reported in SimulationResult; empty = the paper-style
  /// policy_label().  ScenarioSpec binding fills this in.
  std::string label;
  BenchmarkSpec benchmark;
  SimTime duration = SimTime::from_s(60);
  SimTime sampling_interval = SimTime::from_ms(100);
  /// Thermal solver sub-steps per sampling interval.
  std::size_t thermal_substeps = 2;
  std::uint64_t seed = 1;
  /// Worker threads for flow-LUT characterization.  The default is a fixed
  /// count (not hardware concurrency): warm-start trajectories depend on
  /// which worker sweeps which setting rows, so sampled temperatures vary
  /// at the millikelvin level with the worker count — a fixed default keeps
  /// the LUT machine-independent.  0 = hardware concurrency (accepting that
  /// variance).
  std::size_t characterization_threads = 4;

  /// Thermal model knobs, including the solver backend axis
  /// (`thermal.solver_backend`: direct banded Cholesky vs preconditioned
  /// CG, kAuto = bandwidth cost model) — set by ScenarioSpec binding.
  ThermalModelParams thermal{};
  PowerModelParams power{};
  DpmParams dpm{};
  MetricThresholds metrics{};
  ThermalManagerConfig manager{};
  MigrationParams migration{};
  LoadBalancerParams load_balancer{};
  TalbParams talb{};
  GeneratorConfig generator{};
  FlowDeliveryMode delivery_mode = FlowDeliveryMode::kPressureLimited;
  std::vector<PhaseChange> phases{};
  /// Per-core dispatch bias handed to the load-balancing schedulers; empty
  /// = uniform.  Used by the skewed-workload scenarios (hot upper die, hot
  /// corner) to concentrate load on a core subset.
  std::vector<double> core_bias{};

  /// Pre-built characterization artifacts (reused across runs of the same
  /// system).  Fetched from CharacterizationCache::global() when absent.
  std::shared_ptr<const FlowLut> flow_lut;
  std::shared_ptr<const TalbWeightTable> talb_weights;
};

struct SimulationResult {
  std::string label;
  std::string benchmark;
  double hotspot_percent = 0.0;
  double hotspot_max_sample = 0.0;  ///< peak T_max over the run
  double above_target_percent = 0.0;
  double spatial_gradient_percent = 0.0;
  double thermal_cycles_per_1000 = 0.0;
  double avg_tmax = 0.0;
  double chip_energy_j = 0.0;
  double pump_energy_j = 0.0;
  double total_energy_j = 0.0;
  double throughput_per_s = 0.0;
  double avg_utilization = 0.0;
  std::size_t migrations = 0;
  std::size_t pump_transitions = 0;
  std::size_t valve_transitions = 0;
  /// Mean ratio of the largest to the smallest per-cavity flow over the run
  /// (1.0 = uniform delivery; >1 = the valve network steered flow).
  double avg_flow_skew = 1.0;
  std::size_t predictor_rebuilds = 0;
  double forecast_rmse = 0.0;
  double avg_pump_setting = 0.0;
  double elapsed_s = 0.0;
};

/// Per-sample trace record for examples and debugging.
struct SampleTrace {
  SimTime now{};
  double tmax = 0.0;
  double forecast = 0.0;
  std::size_t pump_setting = 0;
  double flow_ml_per_min = 0.0;
  double chip_watts = 0.0;
  double pump_watts = 0.0;
  double mean_busy = 0.0;
  std::size_t queued_threads = 0;
};

/// The StackSpec a configuration resolves to: cfg.stack when set (validated,
/// cooling must agree with cfg.cooling), else the Niagara preset named by
/// cfg.layer_pairs.  Throws ConfigError naming the offending field.
[[nodiscard]] StackSpec resolved_stack_spec(const SimulationConfig& cfg);

/// Stack geometry for a configuration (shared by sessions and the
/// characterization cache): make_stack(resolved_stack_spec(cfg)).
[[nodiscard]] Stack3D make_simulation_stack(const SimulationConfig& cfg);

class SimulationSession {
 public:
  explicit SimulationSession(SimulationConfig config);

  /// Steady-state warm start ("all simulations are initialized with steady
  /// state temperature values", Sec. V) and reset of every aggregate.  Must
  /// be called before step(); calling it again restarts the aggregation
  /// (workload generator and scheduler state persist, as they did across
  /// legacy `Simulator::run()` calls).
  void init();

  /// Advance one sampling interval.  Returns false (and does nothing) once
  /// the configured duration has been simulated.
  bool step();

  /// Aggregate result of the ticks completed so far; the final result once
  /// done().  Rates (throughput, energy) are over the elapsed ticks.
  [[nodiscard]] SimulationResult result() const;

  // -- Introspection ---------------------------------------------------------
  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] bool done() const { return initialized_ && tick_ >= ticks_; }
  /// Simulated time at the end of the last completed tick.
  [[nodiscard]] SimTime now() const;
  [[nodiscard]] std::size_t ticks_completed() const { return tick_; }
  [[nodiscard]] std::size_t tick_count() const { return ticks_; }
  [[nodiscard]] const SimulationConfig& config() const { return cfg_; }
  [[nodiscard]] const Stack3D& stack() const { return stack_; }
  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }
  /// The session's thermal model — the full temperature field, mutable so a
  /// batch runner can advance it externally between begin/finish.
  [[nodiscard]] ThermalModel3D& thermal() { return thermal_; }
  [[nodiscard]] const ThermalModel3D& thermal() const { return thermal_; }
  /// Chip power injected for the current/last tick [W].
  [[nodiscard]] double chip_watts() const { return last_chip_watts_; }
  /// Per-core busy fractions executed in the current/last tick.
  [[nodiscard]] const std::vector<double>& busy_fraction() const {
    return exec_.busy_fraction;
  }
  /// Runtime thermal manager (null on air systems).
  [[nodiscard]] const ThermalManager* manager() const { return manager_.get(); }

  // -- Service-facing read-only state ----------------------------------------
  // What a long-lived server needs to answer "where is this session now?"
  // without reaching into the thermal model or the manager's internals.
  /// Peak junction temperature of the current field [°C].
  [[nodiscard]] double current_tmax() const;
  /// Effective valve openings (empty when the system has no valve network).
  [[nodiscard]] const std::vector<double>& valve_openings() const;
  /// Effective pump setting index (0 on air systems).
  [[nodiscard]] std::size_t pump_setting() const;
  /// Workload phases (cfg.phases) whose start time has been reached: 0 before
  /// the first change, cfg.phases.size() once all have fired.
  [[nodiscard]] std::size_t phase_index() const;

  /// Optional per-sample observer.
  void set_trace_callback(std::function<void(const SampleTrace&)> cb) {
    trace_ = std::move(cb);
  }

  // -- Lockstep decomposition (BatchRunner) ----------------------------------
  // step() == begin_tick(); substep_count() x thermal().step(substep_dt());
  // finish_tick().  A batch runner substitutes the middle part with a shared
  // multi-RHS advance; everything else stays per-session.
  /// Workload arrivals, scheduling, execution, DPM, power injection, and the
  /// flow decision for one tick — everything that feeds the thermal solve.
  void begin_tick();
  [[nodiscard]] std::size_t substep_count() const { return cfg_.thermal_substeps; }
  [[nodiscard]] double substep_dt() const;
  /// Post-thermal bookkeeping: manager update, metrics, energy accounting,
  /// forecast scoring, trace callback.
  void finish_tick();

 private:
  void apply_power(const std::vector<double>& busy, const BenchmarkSpec& bench);
  void read_core_temps(std::vector<double>& out) const;
  void read_unit_temps(std::vector<double>& out) const;
  void warm_start();
  /// Push the manager's effective flow decision (uniform or per-cavity)
  /// into the thermal model; returns the max/min flow ratio (1 = uniform).
  double apply_flow_decision();

  SimulationConfig cfg_;
  Stack3D stack_;
  ThermalModel3D thermal_;
  PowerModel power_;
  PumpModel pump_;
  std::optional<FlowDelivery> delivery_;
  std::vector<BlockSite> cores_;
  WorkloadGenerator generator_;
  CoreQueues queues_;
  std::unique_ptr<Scheduler> scheduler_;
  FixedTimeoutDpm dpm_;
  std::unique_ptr<ThermalManager> manager_;
  std::function<void(const SampleTrace&)> trace_;
  double last_chip_watts_ = 0.0;
  std::vector<VolumetricFlow> flow_scratch_;  ///< per-tick flow vector scratch

  // -- Run state (reset by init) ---------------------------------------------
  bool initialized_ = false;
  bool mid_tick_ = false;
  std::size_t tick_ = 0;
  std::size_t ticks_ = 0;
  MetricsCollector metrics_;
  EnergyAccountant energy_;
  RunningStats busy_stats_;
  RunningStats setting_stats_;
  RunningStats forecast_err2_;
  RunningStats skew_stats_;
  std::deque<std::pair<std::size_t, double>> pending_forecasts_;
  // Baselines of the lifetime-cumulative counters, snapshotted by init() so
  // a restarted session's result() covers only its own run.
  std::size_t completed_base_ = 0;
  std::size_t migrations_base_ = 0;
  std::size_t pump_transitions_base_ = 0;
  std::size_t valve_transitions_base_ = 0;
  std::size_t rebuilds_base_ = 0;

  // -- Per-tick scratch (allocation-free after warm-up) ----------------------
  SchedulerContext ctx_;
  CoreQueues::TickResult exec_;
  std::vector<double> uniform_weights_;
  std::vector<double> core_temps_;
  std::vector<double> unit_temps_;
  std::vector<double> cavity_tmax_;
};

}  // namespace liquid3d
