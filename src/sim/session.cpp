#include "sim/session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "sim/characterization_cache.hpp"

namespace liquid3d {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kLoadBalancing: return "LB";
    case Policy::kReactiveMigration: return "Mig";
    case Policy::kTalb: return "TALB";
  }
  return "?";
}

const char* to_string(CoolingMode m) {
  switch (m) {
    case CoolingMode::kAir: return "Air";
    case CoolingMode::kLiquidMax: return "Max";
    case CoolingMode::kLiquidVar: return "Var";
  }
  return "?";
}

std::string policy_label(Policy p, CoolingMode m) {
  return std::string(to_string(p)) + " (" + to_string(m) + ")";
}

StackSpec resolved_stack_spec(const SimulationConfig& cfg) {
  const CoolingType type =
      cfg.cooling == CoolingMode::kAir ? CoolingType::kAir : CoolingType::kLiquid;
  if (cfg.stack.has_value()) {
    validate_stack_spec(*cfg.stack);
    LIQUID3D_REQUIRE(cfg.stack->cooling == type,
                     "stack: spec '" + cfg.stack->name + "' is " +
                         std::string(to_string(cfg.stack->cooling)) +
                         "-cooled but cooling mode '" +
                         std::string(to_string(cfg.cooling)) + "' implies " +
                         std::string(to_string(type)) + " cooling");
    return *cfg.stack;
  }
  LIQUID3D_REQUIRE(cfg.layer_pairs == 1 || cfg.layer_pairs == 2,
                   "layer_pairs: must be 1 (2-layer system) or 2 (4-layer "
                   "system) without an explicit stack spec; got " +
                       std::to_string(cfg.layer_pairs));
  return niagara_stack_spec(cfg.layer_pairs, type);
}

Stack3D make_simulation_stack(const SimulationConfig& cfg) {
  return make_stack(resolved_stack_spec(cfg));
}

namespace {

std::unique_ptr<Scheduler> make_scheduler(const SimulationConfig& cfg) {
  switch (cfg.policy) {
    case Policy::kLoadBalancing: {
      LoadBalancerParams p = cfg.load_balancer;
      if (!cfg.core_bias.empty()) p.core_bias = cfg.core_bias;
      return make_load_balancer(std::move(p));
    }
    case Policy::kReactiveMigration: {
      MigrationParams p = cfg.migration;
      if (!cfg.core_bias.empty()) p.lb.core_bias = cfg.core_bias;
      return make_reactive_migration(std::move(p));
    }
    case Policy::kTalb:
      // TALB balances on *thermal* weights; a static dispatch bias would be
      // silently ignored, so reject it instead of mislabeling the run.
      LIQUID3D_REQUIRE(cfg.core_bias.empty(),
                       "core_bias is not supported by the TALB policy");
      return make_talb(cfg.talb);
  }
  LIQUID3D_ASSERT(false, "unknown policy");
}

}  // namespace

SimulationSession::SimulationSession(SimulationConfig config)
    : cfg_(std::move(config)),
      stack_(make_simulation_stack(cfg_)),
      thermal_(stack_, cfg_.thermal),
      power_(cfg_.power),
      pump_(PumpModel::laing_ddc()),
      cores_(enumerate_sites(stack_, BlockType::kCore)),
      generator_(cfg_.benchmark, enumerate_sites(stack_, BlockType::kCore).size(),
                 cfg_.seed, cfg_.generator),
      queues_(cores_.size()),
      scheduler_(make_scheduler(cfg_)),
      dpm_(cores_.size(), cfg_.dpm),
      metrics_(cores_.size(), cfg_.metrics) {
  LIQUID3D_REQUIRE(cfg_.core_bias.empty() || cfg_.core_bias.size() == cores_.size(),
                   "core_bias arity must equal the system's core count");
  generator_.set_phase_schedule(cfg_.phases);

  const bool liquid = cfg_.cooling != CoolingMode::kAir;
  CharacterizationCache& cache = CharacterizationCache::global();
  if (liquid) {
    const MicrochannelModel channels(stack_.cavity(), cfg_.thermal.coolant,
                                     cfg_.thermal.channel_params);
    delivery_.emplace(pump_, cfg_.delivery_mode, channels, stack_.width(),
                      stack_.cavity_count());

    if (!cfg_.flow_lut) cfg_.flow_lut = cache.flow_lut(cfg_);
    if (!cfg_.talb_weights) {
      cfg_.talb_weights = cfg_.policy == Policy::kTalb
                              ? cache.talb_weights(cfg_)
                              : std::make_shared<const TalbWeightTable>(
                                    TalbWeightTable::uniform(cores_.size()));
    }
    ThermalManagerConfig mc = cfg_.manager;
    mc.variable_flow = cfg_.cooling == CoolingMode::kLiquidVar;
    std::optional<ValveNetwork> valves;
    if (cfg_.manager.valve_network) {
      valves.emplace(*delivery_, cfg_.manager.valves);
    }
    manager_ = std::make_unique<ThermalManager>(*cfg_.flow_lut, *cfg_.talb_weights,
                                                pump_, mc, std::move(valves));
  } else if (!cfg_.talb_weights) {
    cfg_.talb_weights = cfg_.policy == Policy::kTalb
                            ? cache.talb_weights(cfg_)
                            : std::make_shared<const TalbWeightTable>(
                                  TalbWeightTable::uniform(cores_.size()));
  }

  ticks_ = static_cast<std::size_t>(cfg_.duration.as_ms() /
                                    cfg_.sampling_interval.as_ms());
  uniform_weights_.assign(cores_.size(), 1.0);
}

void SimulationSession::apply_power(const std::vector<double>& busy,
                                    const BenchmarkSpec& bench) {
  double mean_busy = 0.0;
  for (double b : busy) mean_busy += b;
  mean_busy /= static_cast<double>(busy.size());

  // Global core index per (layer, block) follows enumerate_sites order.
  std::size_t core_cursor = 0;
  double chip = 0.0;
  for (std::size_t l = 0; l < stack_.layer_count(); ++l) {
    const Floorplan& fp = stack_.layer(l).floorplan;
    std::vector<double> watts(fp.block_count(), 0.0);
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      const Block& blk = fp.block(b);
      const double t_blk = thermal_.block_mean_temperature(l, b);
      switch (blk.type) {
        case BlockType::kCore: {
          const double core_busy = busy.at(core_cursor);
          const CoreState state =
              core_busy > 0.0 ? CoreState::kActive : dpm_.state(core_cursor);
          watts[b] = power_.core_power(state, core_busy, bench.activity_factor(), t_blk);
          ++core_cursor;
          break;
        }
        case BlockType::kL2Cache:
          watts[b] = power_.l2_power(t_blk);
          break;
        case BlockType::kCrossbar:
          watts[b] = power_.crossbar_power(mean_busy, bench.memory_intensity(), t_blk);
          break;
        case BlockType::kMisc:
          watts[b] = power_.misc_power(blk.rect.area(), t_blk);
          break;
      }
      chip += watts[b];
    }
    thermal_.set_block_power(l, watts);
  }
  last_chip_watts_ = chip;
}

void SimulationSession::read_core_temps(std::vector<double>& out) const {
  out.clear();
  out.reserve(cores_.size());
  for (const BlockSite& site : cores_) {
    out.push_back(thermal_.block_temperature(site.layer, site.block));
  }
}

void SimulationSession::read_unit_temps(std::vector<double>& out) const {
  out.clear();
  for (std::size_t l = 0; l < stack_.layer_count(); ++l) {
    const Floorplan& fp = stack_.layer(l).floorplan;
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      out.push_back(thermal_.block_temperature(l, b));
    }
  }
}

double SimulationSession::apply_flow_decision() {
  if (!delivery_) return 1.0;
  if (manager_->has_valve_network()) {
    manager_->cavity_flows_into(flow_scratch_);
    thermal_.set_cavity_flow(flow_scratch_);
    const auto [lo, hi] = std::minmax_element(flow_scratch_.begin(), flow_scratch_.end());
    return lo->m3_per_s() > 0.0 ? hi->m3_per_s() / lo->m3_per_s() : 1.0;
  }
  thermal_.set_cavity_flow(
      delivery_->per_cavity(manager_->actuator().effective_setting()));
  return 1.0;
}

void SimulationSession::warm_start() {
  // Initialize from the steady state of the benchmark's average load
  // ("all simulations are initialized with steady state temperature
  // values", Sec. V).
  const double u = cfg_.benchmark.avg_utilization;
  std::vector<double> busy(cores_.size(), u);
  thermal_.initialize(cfg_.thermal.ambient_temperature);
  if (delivery_) apply_flow_decision();  // valves start uniform
  for (int i = 0; i < 3; ++i) {
    apply_power(busy, cfg_.benchmark);  // leakage fixed point
    thermal_.solve_steady_state();
  }
}

void SimulationSession::init() {
  warm_start();
  tick_ = 0;
  mid_tick_ = false;
  metrics_ = MetricsCollector(cores_.size(), cfg_.metrics);
  energy_.reset();
  busy_stats_.reset();
  setting_stats_.reset();
  forecast_err2_.reset();
  skew_stats_.reset();
  pending_forecasts_.clear();
  // The queues/scheduler/actuator counters are cumulative over the object's
  // lifetime; snapshot them so a re-init()ed session reports only its own
  // run (all zero on the first init, so first-run results are unchanged).
  completed_base_ = queues_.completed_total();
  migrations_base_ = scheduler_->migration_count();
  pump_transitions_base_ = manager_ ? manager_->actuator().transition_count() : 0;
  valve_transitions_base_ = manager_ && manager_->valves()
                                ? manager_->valves()->transition_count()
                                : 0;
  rebuilds_base_ = manager_ ? manager_->predictor().rebuild_count() : 0;
  initialized_ = true;
}

SimTime SimulationSession::now() const {
  return SimTime::from_ms(static_cast<std::int64_t>(tick_) *
                          cfg_.sampling_interval.as_ms());
}

double SimulationSession::substep_dt() const {
  return cfg_.sampling_interval.as_s() / static_cast<double>(cfg_.thermal_substeps);
}

double SimulationSession::current_tmax() const {
  return thermal_.max_temperature();
}

const std::vector<double>& SimulationSession::valve_openings() const {
  static const std::vector<double> kNone;
  return (manager_ && manager_->has_valve_network())
             ? manager_->valves()->effective_openings()
             : kNone;
}

std::size_t SimulationSession::pump_setting() const {
  return manager_ ? manager_->actuator().effective_setting() : 0;
}

std::size_t SimulationSession::phase_index() const {
  const SimTime t = now();
  std::size_t index = 0;
  for (const PhaseChange& phase : cfg_.phases) {
    if (phase.at.as_ms() <= t.as_ms()) ++index;
  }
  return index;
}

void SimulationSession::begin_tick() {
  LIQUID3D_REQUIRE(initialized_, "call init() before stepping a session");
  LIQUID3D_REQUIRE(!mid_tick_, "begin_tick() called twice without finish_tick()");
  LIQUID3D_REQUIRE(!done(), "session already ran its configured duration");
  const SimTime dt = cfg_.sampling_interval;
  const SimTime tick_start = now();

  std::vector<Thread> arrivals = generator_.tick(tick_start, dt);

  ctx_.now = tick_start;
  read_core_temps(ctx_.core_temperature);
  const double tmax_pre =
      *std::max_element(ctx_.core_temperature.begin(), ctx_.core_temperature.end());
  ctx_.thermal_weight = cfg_.policy == Policy::kTalb && cfg_.talb_weights
                            ? cfg_.talb_weights->lookup(tmax_pre)
                            : uniform_weights_;

  scheduler_->manage(queues_, ctx_);
  scheduler_->dispatch(std::move(arrivals), queues_, ctx_);

  exec_ = queues_.execute(dt);
  dpm_.tick(exec_.busy_fraction, dt);
  apply_power(exec_.busy_fraction, cfg_.benchmark);

  if (delivery_) skew_stats_.add(apply_flow_decision());
  mid_tick_ = true;
}

void SimulationSession::finish_tick() {
  LIQUID3D_REQUIRE(mid_tick_, "finish_tick() without a begin_tick()");
  const SimTime dt = cfg_.sampling_interval;
  const double dt_s = dt.as_s();
  const std::size_t horizon = cfg_.manager.predictor.horizon;

  read_core_temps(core_temps_);
  read_unit_temps(unit_temps_);
  const double tmax = *std::max_element(core_temps_.begin(), core_temps_.end());

  double pump_watts = 0.0;
  std::size_t setting = 0;
  if (manager_) {
    if (manager_->has_valve_network()) {
      thermal_.cavity_max_temperatures(cavity_tmax_);
    }
    setting = manager_->update(now() + dt, tmax, cavity_tmax_);
    pump_watts = manager_->actuator().power();
    setting_stats_.add(static_cast<double>(manager_->actuator().effective_setting()));
    if (cfg_.cooling == CoolingMode::kLiquidVar && !cfg_.manager.reactive) {
      pending_forecasts_.emplace_back(tick_ + horizon, manager_->last_forecast());
    }
  }
  while (!pending_forecasts_.empty() && pending_forecasts_.front().first <= tick_) {
    const double err = pending_forecasts_.front().second - tmax;
    forecast_err2_.add(err * err);
    pending_forecasts_.pop_front();
  }

  energy_.add_interval(last_chip_watts_, pump_watts, dt_s);
  metrics_.add_sample(unit_temps_, core_temps_);
  for (double b : exec_.busy_fraction) busy_stats_.add(b);

  if (trace_) {
    SampleTrace t;
    t.now = now() + dt;
    t.tmax = tmax;
    t.forecast = manager_ ? manager_->last_forecast() : tmax;
    t.pump_setting = setting;
    t.flow_ml_per_min =
        delivery_
            ? delivery_->per_cavity(manager_->actuator().effective_setting())
                  .ml_per_min()
            : 0.0;
    t.chip_watts = last_chip_watts_;
    t.pump_watts = pump_watts;
    double mean_busy = 0.0;
    for (double b : exec_.busy_fraction) mean_busy += b;
    t.mean_busy = mean_busy / static_cast<double>(exec_.busy_fraction.size());
    t.queued_threads = queues_.total_queued();
    trace_(t);
  }

  mid_tick_ = false;
  ++tick_;
}

bool SimulationSession::step() {
  if (done()) return false;
  begin_tick();
  const double sub_dt = substep_dt();
  for (std::size_t s = 0; s < cfg_.thermal_substeps; ++s) {
    thermal_.step(sub_dt);
  }
  finish_tick();
  return true;
}

SimulationResult SimulationSession::result() const {
  LIQUID3D_REQUIRE(initialized_, "result() requires an initialized session");
  // Elapsed time in the exact millisecond domain, so a completed session
  // reports the same elapsed_s (and rates) the legacy monolithic run did.
  const double elapsed_s =
      SimTime::from_ms(static_cast<std::int64_t>(tick_) *
                       cfg_.sampling_interval.as_ms())
          .as_s();
  SimulationResult r;
  r.label = cfg_.label.empty() ? policy_label(cfg_.policy, cfg_.cooling) : cfg_.label;
  r.benchmark = cfg_.benchmark.name;
  r.hotspot_percent = metrics_.hotspot_percent();
  r.hotspot_max_sample = metrics_.tmax_stats().max();
  r.above_target_percent = metrics_.above_target_percent();
  r.spatial_gradient_percent = metrics_.spatial_gradient_percent();
  r.thermal_cycles_per_1000 = metrics_.thermal_cycles_per_1000();
  r.avg_tmax = metrics_.tmax_stats().mean();
  r.chip_energy_j = energy_.chip_joules();
  r.pump_energy_j = energy_.pump_joules();
  r.total_energy_j = energy_.total_joules();
  r.throughput_per_s =
      elapsed_s > 0.0
          ? static_cast<double>(queues_.completed_total() - completed_base_) /
                elapsed_s
          : 0.0;
  r.avg_utilization = busy_stats_.mean();
  r.migrations = scheduler_->migration_count() - migrations_base_;
  r.pump_transitions =
      (manager_ ? manager_->actuator().transition_count() : 0) -
      pump_transitions_base_;
  r.valve_transitions = (manager_ && manager_->valves()
                             ? manager_->valves()->transition_count()
                             : 0) -
                        valve_transitions_base_;
  r.avg_flow_skew = skew_stats_.count() > 0 ? skew_stats_.mean() : 1.0;
  r.predictor_rebuilds =
      (manager_ ? manager_->predictor().rebuild_count() : 0) - rebuilds_base_;
  r.forecast_rmse = std::sqrt(forecast_err2_.mean());
  r.avg_pump_setting = setting_stats_.mean();
  r.elapsed_s = elapsed_s;
  return r;
}

}  // namespace liquid3d
