// metrics.hpp — the evaluation metrics of Sec. V.
//
//   * hot spots: percentage of sampling intervals with any unit above the
//     85 °C threshold (Fig. 6 also reports the per-workload maximum);
//   * time above the 80 °C target (the controller's guarantee);
//   * spatial gradients: percentage of intervals where the maximum
//     temperature difference among units exceeds 15 °C (Fig. 7);
//   * thermal cycles: per-core temperature swings with magnitude above
//     20 °C, detected with peak/valley tracking over a sliding history
//     (Fig. 7); reported per 1000 core-samples;
//   * energy (chip / pump) and throughput (threads per second).
#pragma once

#include <cstddef>
#include <vector>

#include "common/statistics.hpp"

namespace liquid3d {

struct MetricThresholds {
  double hotspot_c = 85.0;
  double target_c = 80.0;
  double spatial_gradient_c = 15.0;
  double thermal_cycle_c = 20.0;
  /// Reversals smaller than this are sensor noise, not cycles.
  double cycle_noise_band_c = 1.0;
};

/// Detects temperature cycles (peak-to-valley swings) on one core.
class ThermalCycleCounter {
 public:
  explicit ThermalCycleCounter(MetricThresholds thresholds = {});

  void add_sample(double temperature_c);

  [[nodiscard]] std::size_t cycles_above_threshold() const { return cycles_; }
  [[nodiscard]] std::size_t samples() const { return samples_; }

 private:
  MetricThresholds thr_;
  double last_extremum_ = 0.0;
  double current_ = 0.0;
  int direction_ = 0;  ///< +1 rising, -1 falling, 0 unknown
  std::size_t cycles_ = 0;
  std::size_t samples_ = 0;
};

/// Aggregates everything the figures report for one simulation run.
class MetricsCollector {
 public:
  MetricsCollector(std::size_t core_count, MetricThresholds thresholds = {});

  /// One sampling interval.
  ///   unit_temps — temperatures of all monitored units (cores, caches, ...);
  ///   core_temps — core sensor readings (subset used for cycles/control).
  void add_sample(const std::vector<double>& unit_temps,
                  const std::vector<double>& core_temps);

  [[nodiscard]] double hotspot_percent() const { return hotspot_.percent(); }
  [[nodiscard]] double above_target_percent() const { return above_target_.percent(); }
  [[nodiscard]] double spatial_gradient_percent() const { return gradient_.percent(); }
  /// Cycles with magnitude above the threshold per 1000 core-samples.
  [[nodiscard]] double thermal_cycles_per_1000() const;
  [[nodiscard]] const RunningStats& tmax_stats() const { return tmax_; }
  [[nodiscard]] const RunningStats& gradient_stats() const { return gradient_magnitude_; }

  [[nodiscard]] const MetricThresholds& thresholds() const { return thr_; }

 private:
  MetricThresholds thr_;
  FractionCounter hotspot_;
  FractionCounter above_target_;
  FractionCounter gradient_;
  RunningStats tmax_;
  RunningStats gradient_magnitude_;
  std::vector<ThermalCycleCounter> cycle_counters_;
};

}  // namespace liquid3d
