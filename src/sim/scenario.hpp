// scenario.hpp — named, composable simulation scenarios.
//
// The evaluation used to be expressed through the closed (Policy,
// CoolingMode) enum pair, which could name exactly the paper's seven cells
// and nothing else; the valve-network and skewed-workload experiments had to
// smuggle their extra dimensions through ad-hoc config fields.  A
// ScenarioSpec makes the cell identity a first-class, serializable value:
// policy + cooling + delivery model + named spatial skew, with a stable
// registry name.  ExperimentSuite, the skew comparisons, and the batch
// runner all consume these; sharding a sweep across machines (or
// checkpointing a partial grid) only needs to ship rows of
// `scenario_csv_header()` columns.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "sim/session.hpp"
#include "thermal/solver/backend.hpp"

namespace liquid3d {

/// A spatially skewed load pattern for the per-cavity flow experiments:
/// per-core dispatch bias handed to the load balancer (see
/// LoadBalancerParams::core_bias).
struct SkewScenario {
  std::string name;
  std::vector<double> core_bias;  ///< arity = core count of the system
};

/// The canonical skews (bias 6:1 toward the hot cores):
///  * "hot-upper-die" — load concentrates on the upper half of the core
///    sites (4-layer: the whole upper core die; 2-layer: the top core row);
///  * "hot-corner"    — load concentrates on two adjacent corner cores.
[[nodiscard]] std::vector<SkewScenario> skewed_workload_scenarios(
    std::size_t layer_pairs);
/// Same skews for an arbitrary core count (custom stacks); equals
/// skewed_workload_scenarios(p) when cores == 8*p.  Requires cores >= 2.
[[nodiscard]] std::vector<SkewScenario> skewed_workload_scenarios_for_cores(
    std::size_t core_count);

/// One named cell configuration of the evaluation.
struct ScenarioSpec {
  /// Registry identity, e.g. "talb-var" or "lb-max-valved/hot-corner".
  std::string name;
  Policy policy = Policy::kTalb;
  CoolingMode cooling = CoolingMode::kLiquidVar;
  /// Route coolant through the valve network (per-cavity steering) instead
  /// of the paper's uniform split.  Liquid cooling only.
  bool valve_network = false;
  /// Named spatial load skew from skewed_workload_scenarios ("" = uniform);
  /// resolved against the target system's core count at bind time.
  std::string skew;
  /// Display label; empty = the paper-style policy_label().
  std::string label;
  /// Thermal solver backend for the cell's model (kAuto = the bandwidth
  /// cost model in thermal/solver/backend.hpp picks).  Like the valve/skew
  /// axes this is deliberately seed-neutral: a backend comparison runs both
  /// arms on the identical workload trace.
  SolverBackend solver = SolverBackend::kAuto;
  /// Stack geometry axis: a stack preset name, a stack-file path, or the
  /// name of a spec embedded in sweep metadata ("" = the config's default
  /// system, i.e. the layer_pairs preset).  Resolved by resolve_stack_axis
  /// at bind time.  Seed-neutral like the other non-workload axes: a
  /// geometry comparison runs all arms on the identical workload trace.
  std::string stack;

  [[nodiscard]] std::string display_label() const;
};

// -- Serialization (common/csv.hpp-style plain rows) --------------------------
[[nodiscard]] const char* policy_name(Policy p);        ///< "lb" / "mig" / "talb"
[[nodiscard]] const char* cooling_name(CoolingMode m);  ///< "air" / "max" / "var"
[[nodiscard]] Policy policy_from_name(std::string_view s);
[[nodiscard]] CoolingMode cooling_from_name(std::string_view s);

[[nodiscard]] const std::vector<std::string>& scenario_csv_header();
[[nodiscard]] std::vector<std::string> to_csv_row(const ScenarioSpec& s);
/// Inverse of to_csv_row; throws ConfigError on malformed rows.
[[nodiscard]] ScenarioSpec scenario_from_csv_row(
    const std::vector<std::string>& row);

/// Bind a scenario onto a configuration: policy, cooling, valve delivery,
/// display label, stack geometry (when the `stack` axis is set, resolved
/// against `stacks` / presets / files and stored in cfg.stack), and (when
/// `skew` is named) the per-core dispatch bias for the resolved system's
/// core count.  Throws ConfigError for an unknown skew or stack name.
void apply_scenario(const ScenarioSpec& s, SimulationConfig& cfg,
                    const std::vector<StackSpec>& stacks = {});

/// The seven bars of Figs. 6-8 in plot order, as registry-named scenarios
/// ("lb-air" ... "talb-var").
[[nodiscard]] std::vector<ScenarioSpec> paper_scenario_grid();

/// Deterministic per-cell RNG seed.  Documented mix:
///
///   mix64 = the SplitMix64 finalizer (Steele et al.; xoshiro's seeder)
///   h0 = mix64(suite_seed)
///   h1 = mix64(h0 ^ (policy * GOLDEN + cooling + 1))
///   seed = mix64(h1 ^ (fnv1a(workload.name) + workload.id))
///
/// The seed depends only on the cell's identity — never on its position in
/// a sweep — so grids can be reordered, sharded, or resumed without moving
/// any cell's random stream; the finalizer avalanches, so adjacent suite
/// seeds or workload ids still give uncorrelated streams.  Deliberately
/// independent of the valve/skew axes: a delivery comparison runs both arms
/// on the identical workload trace.
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t suite_seed, Policy policy,
                                      CoolingMode cooling,
                                      const BenchmarkSpec& workload);
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t suite_seed,
                                      const ScenarioSpec& scenario,
                                      const BenchmarkSpec& workload);

/// Name -> scenario lookup.  The global() registry is pre-populated with
/// the paper grid; experiments register their own specs under new names.
class ScenarioRegistry {
 public:
  /// Empty registry (the global one starts with paper_scenario_grid()).
  ScenarioRegistry() = default;

  [[nodiscard]] static ScenarioRegistry& global();

  /// Register a spec; throws ConfigError on an empty or duplicate name.
  void add(ScenarioSpec spec);
  /// nullptr when absent.  The pointer stays valid across add() calls.
  [[nodiscard]] const ScenarioSpec* find(std::string_view name) const;
  /// Throws ConfigError when absent.
  [[nodiscard]] const ScenarioSpec& at(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

 private:
  std::deque<ScenarioSpec> specs_;  ///< deque: stable references on add()
};

}  // namespace liquid3d
