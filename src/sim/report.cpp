#include "sim/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <iterator>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/parse.hpp"

namespace liquid3d {

namespace {

// One declaration-ordered field list keeps the CSV header, CSV rows, JSON
// objects, and the CSV reader in sync.  `counts` are emitted as integers.
struct NumericField {
  const char* name;
  double (*get)(const SimulationResult&);
  void (*set)(SimulationResult&, double);
  bool integral;
};

#define LIQUID3D_DOUBLE_FIELD(f)                       \
  {#f, [](const SimulationResult& r) { return r.f; },  \
   [](SimulationResult& r, double v) { r.f = v; }, false}
#define LIQUID3D_COUNT_FIELD(f)                                            \
  {#f, [](const SimulationResult& r) { return static_cast<double>(r.f); }, \
   [](SimulationResult& r, double v) { r.f = static_cast<std::size_t>(v); }, true}

const NumericField kNumericFields[] = {
    LIQUID3D_DOUBLE_FIELD(hotspot_percent),
    LIQUID3D_DOUBLE_FIELD(hotspot_max_sample),
    LIQUID3D_DOUBLE_FIELD(above_target_percent),
    LIQUID3D_DOUBLE_FIELD(spatial_gradient_percent),
    LIQUID3D_DOUBLE_FIELD(thermal_cycles_per_1000),
    LIQUID3D_DOUBLE_FIELD(avg_tmax),
    LIQUID3D_DOUBLE_FIELD(chip_energy_j),
    LIQUID3D_DOUBLE_FIELD(pump_energy_j),
    LIQUID3D_DOUBLE_FIELD(total_energy_j),
    LIQUID3D_DOUBLE_FIELD(throughput_per_s),
    LIQUID3D_DOUBLE_FIELD(avg_utilization),
    LIQUID3D_COUNT_FIELD(migrations),
    LIQUID3D_COUNT_FIELD(pump_transitions),
    LIQUID3D_COUNT_FIELD(valve_transitions),
    LIQUID3D_DOUBLE_FIELD(avg_flow_skew),
    LIQUID3D_COUNT_FIELD(predictor_rebuilds),
    LIQUID3D_DOUBLE_FIELD(forecast_rmse),
    LIQUID3D_DOUBLE_FIELD(avg_pump_setting),
    LIQUID3D_DOUBLE_FIELD(elapsed_s),
};

#undef LIQUID3D_DOUBLE_FIELD
#undef LIQUID3D_COUNT_FIELD

std::string format_number(const NumericField& f, const SimulationResult& r) {
  char buf[40];
  const double v = f.get(r);
  if (f.integral) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

void write_csv_row(std::ostream& out, const std::vector<std::string>& row) {
  out << to_csv_line(row);  // common/csv.hpp RFC-4180 quoting
}

/// Strict double parse for one named column; %.17g output round-trips
/// through here bit-exactly.
double parse_number(const std::string& text, const char* column) {
  return parse_double(text, "column '" + std::string(column) + "'");
}

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

void write_result_json(std::ostream& out, const SimulationResult& r,
                       const char* indent) {
  out << indent << "{\"label\": ";
  write_json_string(out, r.label);
  out << ", \"benchmark\": ";
  write_json_string(out, r.benchmark);
  for (const NumericField& f : kNumericFields) {
    out << ", \"" << f.name << "\": " << format_number(f, r);
  }
  out << "}";
}

void write_json_array(std::ostream& out, const std::vector<SimulationResult>& rs,
                      const char* indent) {
  out << "[\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    write_result_json(out, rs[i], indent);
    out << (i + 1 < rs.size() ? ",\n" : "\n");
  }
  out << "]";
}

}  // namespace

const std::vector<std::string>& simulation_result_csv_header() {
  static const std::vector<std::string> header = [] {
    std::vector<std::string> h = {"label", "benchmark"};
    for (const NumericField& f : kNumericFields) h.emplace_back(f.name);
    return h;
  }();
  return header;
}

std::vector<std::string> to_csv_row(const SimulationResult& r) {
  std::vector<std::string> row = {r.label, r.benchmark};
  for (const NumericField& f : kNumericFields) row.push_back(format_number(f, r));
  return row;
}

SimulationResult simulation_result_from_csv_row(
    const std::vector<std::string>& row) {
  const std::vector<std::string>& header = simulation_result_csv_header();
  LIQUID3D_REQUIRE(row.size() == header.size(),
                   "result row arity mismatch: got " +
                       std::to_string(row.size()) + " columns, expected " +
                       std::to_string(header.size()));
  SimulationResult r;
  r.label = row[0];
  r.benchmark = row[1];
  for (std::size_t i = 0; i < std::size(kNumericFields); ++i) {
    const NumericField& f = kNumericFields[i];
    // Counts were written as integers; parse them as such so "-1" or "3.7"
    // fails loudly instead of wrapping/truncating into a plausible value.
    const double v =
        f.integral
            ? static_cast<double>(parse_u64(
                  row[2 + i], "column '" + std::string(f.name) + "'"))
            : parse_number(row[2 + i], f.name);
    f.set(r, v);
  }
  return r;
}

bool results_identical(const SimulationResult& a, const SimulationResult& b) {
  if (a.label != b.label || a.benchmark != b.benchmark) return false;
  for (const NumericField& f : kNumericFields) {
    if (f.get(a) != f.get(b)) return false;
  }
  return true;
}

void write_results_csv(std::ostream& out,
                       const std::vector<SimulationResult>& results) {
  write_csv_row(out, simulation_result_csv_header());
  for (const SimulationResult& r : results) write_csv_row(out, to_csv_row(r));
}

std::vector<SimulationResult> read_results_csv(std::istream& in) {
  std::vector<std::string> record;
  LIQUID3D_REQUIRE(read_csv_record(in, record) &&
                       record == simulation_result_csv_header(),
                   "results CSV: missing or mismatched header row");
  std::vector<SimulationResult> results;
  std::size_t row_number = 1;  // the header was row 1
  while (read_csv_record(in, record)) {
    ++row_number;
    try {
      results.push_back(simulation_result_from_csv_row(record));
    } catch (const ConfigError& e) {
      throw ConfigError("results CSV row " + std::to_string(row_number) +
                        ": " + e.what());
    }
  }
  return results;
}

void write_results_json(std::ostream& out,
                        const std::vector<SimulationResult>& results) {
  write_json_array(out, results, "  ");
  out << "\n";
}

void write_summaries_csv(std::ostream& out,
                         const std::vector<PolicySummary>& summaries) {
  std::vector<std::string> header = {"policy"};
  const auto& result_header = simulation_result_csv_header();
  header.insert(header.end(), result_header.begin(), result_header.end());
  write_csv_row(out, header);
  for (const PolicySummary& s : summaries) {
    for (const SimulationResult& r : s.per_workload) {
      std::vector<std::string> row = {s.label};
      const std::vector<std::string> result_row = to_csv_row(r);
      row.insert(row.end(), result_row.begin(), result_row.end());
      write_csv_row(out, row);
    }
  }
}

void write_summaries_json(std::ostream& out,
                          const std::vector<PolicySummary>& summaries) {
  auto number = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  out << "[\n";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const PolicySummary& s = summaries[i];
    out << "  {\"label\": ";
    write_json_string(out, s.label);
    out << ",\n   \"aggregates\": {"
        << "\"mean_hotspot_percent\": " << number(s.mean_hotspot_percent())
        << ", \"max_hotspot_percent\": " << number(s.max_hotspot_percent())
        << ", \"mean_above_target_percent\": "
        << number(s.mean_above_target_percent())
        << ", \"mean_gradient_percent\": " << number(s.mean_gradient_percent())
        << ", \"mean_cycles_per_1000\": " << number(s.mean_cycles_per_1000())
        << ", \"total_chip_energy\": " << number(s.total_chip_energy())
        << ", \"total_pump_energy\": " << number(s.total_pump_energy())
        << ", \"total_throughput\": " << number(s.total_throughput()) << "},\n"
        << "   \"per_workload\": ";
    write_json_array(out, s.per_workload, "     ");
    out << "}" << (i + 1 < summaries.size() ? ",\n" : "\n");
  }
  out << "]\n";
}

}  // namespace liquid3d
