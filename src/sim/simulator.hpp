// simulator.hpp — legacy single-call facade over SimulationSession.
//
// One Simulator runs one (system, cooling, policy, workload) cell of the
// evaluation grid to completion.  The simulation engine itself lives in
// sim/session.hpp (explicit init/step/result, lockstep decomposition for
// batching); `run()` here is exactly the compatibility loop
//
//   session.init(); while (session.step()) {} return session.result();
//
// New code that wants to inspect or co-advance simulations should hold a
// SimulationSession (or a BatchRunner) directly.
#pragma once

#include "sim/session.hpp"

namespace liquid3d {

class Simulator {
 public:
  explicit Simulator(SimulationConfig config) : session_(std::move(config)) {}

  /// Run the configured duration and return the aggregated result.
  SimulationResult run() {
    session_.init();
    while (session_.step()) {
    }
    return session_.result();
  }

  /// Optional per-sample observer.
  void set_trace_callback(std::function<void(const SampleTrace&)> cb) {
    session_.set_trace_callback(std::move(cb));
  }

  [[nodiscard]] const SimulationConfig& config() const { return session_.config(); }
  [[nodiscard]] const Stack3D& stack() const { return session_.stack(); }
  [[nodiscard]] std::size_t core_count() const { return session_.core_count(); }
  /// The underlying steppable session.
  [[nodiscard]] SimulationSession& session() { return session_; }
  [[nodiscard]] const SimulationSession& session() const { return session_; }

  /// Characterization artifacts for a system configuration; thin wrappers
  /// over CharacterizationCache::global() kept for callers of the old
  /// static builders (benches, tests).
  [[nodiscard]] static std::shared_ptr<const FlowLut> build_flow_lut(
      const SimulationConfig& cfg);
  [[nodiscard]] static std::shared_ptr<const TalbWeightTable> build_talb_weights(
      const SimulationConfig& cfg);

 private:
  SimulationSession session_;
};

}  // namespace liquid3d
