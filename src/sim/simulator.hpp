// simulator.hpp — full-system simulation: workload + scheduler + DPM +
// power + 3D thermal model + the joint flow-controller/TALB technique.
//
// This is the experimental vehicle of Sec. V: a multi-queue scheduling
// infrastructure over the 3D thermal model, sampled every 100 ms, with all
// simulations initialized from the steady state.  One Simulator instance
// runs one (system, cooling, policy, workload) cell of the evaluation grid.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/thermal_manager.hpp"
#include "coolant/flow.hpp"
#include "geom/sites.hpp"
#include "geom/stack.hpp"
#include "power/dpm.hpp"
#include "power/energy.hpp"
#include "power/power_model.hpp"
#include "sched/scheduler.hpp"
#include "sim/metrics.hpp"
#include "thermal/model3d.hpp"
#include "workload/generator.hpp"

namespace liquid3d {

/// Scheduling policy (Sec. V).
enum class Policy { kLoadBalancing, kReactiveMigration, kTalb };
/// Cooling configuration (Sec. V): air, liquid at worst-case flow, or
/// liquid with the paper's variable-flow controller.
enum class CoolingMode { kAir, kLiquidMax, kLiquidVar };

[[nodiscard]] const char* to_string(Policy p);
[[nodiscard]] const char* to_string(CoolingMode m);
/// Paper-style label, e.g. "TALB (Var)".
[[nodiscard]] std::string policy_label(Policy p, CoolingMode m);

struct SimulationConfig {
  /// 1 -> 2-layer system (8 cores), 2 -> 4-layer system (16 cores).
  std::size_t layer_pairs = 1;
  CoolingMode cooling = CoolingMode::kLiquidVar;
  Policy policy = Policy::kTalb;
  BenchmarkSpec benchmark;
  SimTime duration = SimTime::from_s(60);
  SimTime sampling_interval = SimTime::from_ms(100);
  /// Thermal solver sub-steps per sampling interval.
  std::size_t thermal_substeps = 2;
  std::uint64_t seed = 1;
  /// Worker threads for flow-LUT characterization.  The default is a fixed
  /// count (not hardware concurrency): warm-start trajectories depend on
  /// which worker sweeps which setting rows, so sampled temperatures vary
  /// at the millikelvin level with the worker count — a fixed default keeps
  /// the LUT machine-independent.  0 = hardware concurrency (accepting that
  /// variance).
  std::size_t characterization_threads = 4;

  ThermalModelParams thermal{};
  PowerModelParams power{};
  DpmParams dpm{};
  MetricThresholds metrics{};
  ThermalManagerConfig manager{};
  MigrationParams migration{};
  LoadBalancerParams load_balancer{};
  TalbParams talb{};
  GeneratorConfig generator{};
  FlowDeliveryMode delivery_mode = FlowDeliveryMode::kPressureLimited;
  std::vector<PhaseChange> phases{};
  /// Per-core dispatch bias handed to the load-balancing schedulers; empty
  /// = uniform.  Used by the skewed-workload scenarios (hot upper die, hot
  /// corner) to concentrate load on a core subset.
  std::vector<double> core_bias{};

  /// Pre-built characterization artifacts (reused across runs of the same
  /// system).  Built on demand when absent.
  std::shared_ptr<const FlowLut> flow_lut;
  std::shared_ptr<const TalbWeightTable> talb_weights;
};

struct SimulationResult {
  std::string label;
  std::string benchmark;
  double hotspot_percent = 0.0;
  double hotspot_max_sample = 0.0;  ///< peak T_max over the run
  double above_target_percent = 0.0;
  double spatial_gradient_percent = 0.0;
  double thermal_cycles_per_1000 = 0.0;
  double avg_tmax = 0.0;
  double chip_energy_j = 0.0;
  double pump_energy_j = 0.0;
  double total_energy_j = 0.0;
  double throughput_per_s = 0.0;
  double avg_utilization = 0.0;
  std::size_t migrations = 0;
  std::size_t pump_transitions = 0;
  std::size_t valve_transitions = 0;
  /// Mean ratio of the largest to the smallest per-cavity flow over the run
  /// (1.0 = uniform delivery; >1 = the valve network steered flow).
  double avg_flow_skew = 1.0;
  std::size_t predictor_rebuilds = 0;
  double forecast_rmse = 0.0;
  double avg_pump_setting = 0.0;
  double elapsed_s = 0.0;
};

/// Per-sample trace record for examples and debugging.
struct SampleTrace {
  SimTime now{};
  double tmax = 0.0;
  double forecast = 0.0;
  std::size_t pump_setting = 0;
  double flow_ml_per_min = 0.0;
  double chip_watts = 0.0;
  double pump_watts = 0.0;
  double mean_busy = 0.0;
  std::size_t queued_threads = 0;
};

class Simulator {
 public:
  explicit Simulator(SimulationConfig config);

  /// Run the configured duration and return the aggregated result.
  SimulationResult run();

  /// Optional per-sample observer.
  void set_trace_callback(std::function<void(const SampleTrace&)> cb) {
    trace_ = std::move(cb);
  }

  [[nodiscard]] const SimulationConfig& config() const { return cfg_; }
  [[nodiscard]] const Stack3D& stack() const { return stack_; }
  [[nodiscard]] std::size_t core_count() const { return cores_.size(); }

  /// Build (or reuse) the flow LUT for a system configuration; exposed so
  /// benches can share one characterization across many runs.
  [[nodiscard]] static std::shared_ptr<const FlowLut> build_flow_lut(
      const SimulationConfig& cfg);
  [[nodiscard]] static std::shared_ptr<const TalbWeightTable> build_talb_weights(
      const SimulationConfig& cfg);

 private:
  void apply_power(const std::vector<double>& busy, const BenchmarkSpec& bench);
  [[nodiscard]] std::vector<double> read_core_temps() const;
  [[nodiscard]] std::vector<double> read_unit_temps() const;
  void warm_start();
  /// Push the manager's effective flow decision (uniform or per-cavity)
  /// into the thermal model; returns the max/min flow ratio (1 = uniform).
  double apply_flow_decision();

  SimulationConfig cfg_;
  Stack3D stack_;
  ThermalModel3D thermal_;
  PowerModel power_;
  PumpModel pump_;
  std::optional<FlowDelivery> delivery_;
  std::vector<BlockSite> cores_;
  WorkloadGenerator generator_;
  CoreQueues queues_;
  std::unique_ptr<Scheduler> scheduler_;
  FixedTimeoutDpm dpm_;
  std::unique_ptr<ThermalManager> manager_;
  std::function<void(const SampleTrace&)> trace_;
  double last_chip_watts_ = 0.0;
  std::vector<VolumetricFlow> flow_scratch_;  ///< per-tick flow vector scratch
};

}  // namespace liquid3d
