// experiment.hpp — the evaluation grid of Sec. V.
//
// Figures 6, 7, and 8 all run the same grid: every scenario (policy x
// cooling cell) over the eight Table II workloads, on the 2- (and for some
// plots 4-) layer system.  This helper runs the grid once, sharing one
// characterization per system through a CharacterizationCache, and exposes
// per-scenario aggregates (mean and max over workloads) plus the LB-on-air
// energy normalization the paper's plots use.
//
// Cells are expressed as ScenarioSpec values (sim/scenario.hpp); the legacy
// PolicyConfig pair survives as a convenience adapter.  Execution is either
// a ThreadPool fan-out (one session per worker) or a lockstep BatchRunner
// (all compatible cells sharing one factorization) — both are bit-identical
// to a serial sweep, so the choice is purely an execution-resource knob.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/characterization_cache.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace liquid3d {

/// One policy/cooling configuration in the evaluation (legacy cell id).
struct PolicyConfig {
  Policy policy;
  CoolingMode cooling;
};

/// The seven bars of Figs. 6-7, in plot order.
[[nodiscard]] std::vector<PolicyConfig> paper_policy_grid();

/// How ExperimentSuite::run executes its cells (results are identical).
enum class SuiteExecution {
  kThreadPool,  ///< one session per worker thread (wall-clock parallelism)
  kBatched,     ///< lockstep BatchRunner (shared factorizations, one thread)
};

struct SuiteConfig {
  std::size_t layer_pairs = 1;
  SimTime duration = SimTime::from_s(60);
  std::uint64_t seed = 7;
  bool dpm_enabled = true;
  /// Worker threads for the policy x workload fan-out (0 = hardware
  /// concurrency).  Every cell is an independent session (own thermal
  /// model, own RNG stream), so results are bit-identical to a serial run.
  std::size_t worker_threads = 0;
  SuiteExecution execution = SuiteExecution::kThreadPool;
  /// Base template applied to every run (thermal/power/etc. parameters).
  SimulationConfig base{};
  /// Stack specs resolvable by name from a scenario's `stack` axis (e.g.
  /// specs a sweep plan embedded in its `#suite` metadata); consulted before
  /// presets and file paths.
  std::vector<StackSpec> stacks{};
};

/// Results of one scenario over all workloads.
struct PolicySummary {
  std::string label;
  std::vector<SimulationResult> per_workload;

  [[nodiscard]] double mean_hotspot_percent() const;
  [[nodiscard]] double max_hotspot_percent() const;
  [[nodiscard]] double mean_above_target_percent() const;
  [[nodiscard]] double mean_gradient_percent() const;
  [[nodiscard]] double mean_cycles_per_1000() const;
  [[nodiscard]] double total_chip_energy() const;
  [[nodiscard]] double total_pump_energy() const;
  [[nodiscard]] double total_throughput() const;
};

/// Uniform vs. valve-network delivery on one skewed workload, at equal
/// total delivered flow (same pump, same LUT, same schedule skew — only the
/// per-cavity distribution differs).
struct FlowComparisonResult {
  std::string scenario;
  SimulationResult uniform;  ///< valves absent (the paper's equal split)
  SimulationResult valved;   ///< valve-network per-cavity control
};

class ExperimentSuite {
 public:
  explicit ExperimentSuite(SuiteConfig cfg);

  /// Run the given scenarios over the given workloads.
  [[nodiscard]] std::vector<PolicySummary> run(
      const std::vector<ScenarioSpec>& scenarios,
      const std::vector<BenchmarkSpec>& workloads);
  /// Legacy adapter: policy/cooling pairs become unnamed scenarios.
  [[nodiscard]] std::vector<PolicySummary> run(
      const std::vector<PolicyConfig>& policies,
      const std::vector<BenchmarkSpec>& workloads);

  [[nodiscard]] std::vector<PolicySummary> run_paper_grid() {
    return run(paper_scenario_grid(), table2_benchmarks());
  }

  /// Build one concrete cell: the scenario bound to the suite's base
  /// config, with a deterministic per-cell seed (cell_seed) and the shared
  /// characterization artifacts attached.
  [[nodiscard]] SimulationConfig make_config(const ScenarioSpec& scenario,
                                             const BenchmarkSpec& workload);
  [[nodiscard]] SimulationConfig make_config(PolicyConfig policy,
                                             const BenchmarkSpec& workload);

  /// Run one skewed workload twice — uniform delivery vs. valve-network
  /// per-cavity control — under the given liquid cooling mode.  Both cells
  /// share the characterization, seed, and skew, so the comparison isolates
  /// the delivery model; with CoolingMode::kLiquidMax the total delivered
  /// flow (and pump energy) is identical by construction.
  [[nodiscard]] FlowComparisonResult run_flow_comparison(
      const SkewScenario& scenario, const BenchmarkSpec& workload,
      CoolingMode cooling = CoolingMode::kLiquidMax);

  /// The suite's characterization cache (shared across all cells).
  [[nodiscard]] CharacterizationCache& characterizations() { return cache_; }

 private:
  [[nodiscard]] std::vector<SimulationResult> run_cells(
      std::vector<SimulationConfig> cells);

  SuiteConfig cfg_;
  CharacterizationCache cache_;
};

/// Energy normalization baseline: the summary whose label matches
/// "LB (Air)"; throws ConfigError when absent.
[[nodiscard]] const PolicySummary& find_baseline(
    const std::vector<PolicySummary>& summaries, const std::string& label = "LB (Air)");

}  // namespace liquid3d
