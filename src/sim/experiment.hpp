// experiment.hpp — the evaluation grid of Sec. V.
//
// Figures 6, 7, and 8 all run the same grid: every policy x cooling
// configuration over the eight Table II workloads, on the 2- (and for some
// plots 4-) layer system.  This helper runs the grid once, reusing one flow
// LUT / TALB weight characterization per system, and exposes per-policy
// aggregates (mean and max over workloads) plus the LB-on-air energy
// normalization the paper's plots use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace liquid3d {

/// One policy/cooling configuration in the evaluation.
struct PolicyConfig {
  Policy policy;
  CoolingMode cooling;
};

/// The seven bars of Figs. 6-7, in plot order.
[[nodiscard]] std::vector<PolicyConfig> paper_policy_grid();

struct SuiteConfig {
  std::size_t layer_pairs = 1;
  SimTime duration = SimTime::from_s(60);
  std::uint64_t seed = 7;
  bool dpm_enabled = true;
  /// Worker threads for the policy x workload fan-out (0 = hardware
  /// concurrency).  Every cell is an independent Simulator (own thermal
  /// model, own RNG stream), so results are bit-identical to a serial run.
  std::size_t worker_threads = 0;
  /// Base template applied to every run (thermal/power/etc. parameters).
  SimulationConfig base{};
};

/// Results of one policy over all workloads.
struct PolicySummary {
  std::string label;
  std::vector<SimulationResult> per_workload;

  [[nodiscard]] double mean_hotspot_percent() const;
  [[nodiscard]] double max_hotspot_percent() const;
  [[nodiscard]] double mean_above_target_percent() const;
  [[nodiscard]] double mean_gradient_percent() const;
  [[nodiscard]] double mean_cycles_per_1000() const;
  [[nodiscard]] double total_chip_energy() const;
  [[nodiscard]] double total_pump_energy() const;
  [[nodiscard]] double total_throughput() const;
};

/// A spatially skewed load pattern for the per-cavity flow experiments:
/// per-core dispatch bias handed to the load balancer (see
/// LoadBalancerParams::core_bias).
struct SkewScenario {
  std::string name;
  std::vector<double> core_bias;  ///< arity = core count of the system
};

/// The canonical skews (bias 6:1 toward the hot cores):
///  * "hot-upper-die" — load concentrates on the upper half of the core
///    sites (4-layer: the whole upper core die; 2-layer: the top core row);
///  * "hot-corner"    — load concentrates on two adjacent corner cores.
[[nodiscard]] std::vector<SkewScenario> skewed_workload_scenarios(
    std::size_t layer_pairs);

/// Uniform vs. valve-network delivery on one skewed workload, at equal
/// total delivered flow (same pump, same LUT, same schedule skew — only the
/// per-cavity distribution differs).
struct FlowComparisonResult {
  std::string scenario;
  SimulationResult uniform;  ///< valves absent (the paper's equal split)
  SimulationResult valved;   ///< valve-network per-cavity control
};

class ExperimentSuite {
 public:
  explicit ExperimentSuite(SuiteConfig cfg);

  /// Run the given policies over the given workloads (defaults: the paper's
  /// seven policies over all eight Table II benchmarks).
  [[nodiscard]] std::vector<PolicySummary> run(
      const std::vector<PolicyConfig>& policies,
      const std::vector<BenchmarkSpec>& workloads);

  [[nodiscard]] std::vector<PolicySummary> run_paper_grid() {
    return run(paper_policy_grid(), table2_benchmarks());
  }

  /// Build one concrete SimulationConfig cell (shares characterizations).
  [[nodiscard]] SimulationConfig make_config(PolicyConfig policy,
                                             const BenchmarkSpec& workload);

  /// Run one skewed workload twice — uniform delivery vs. valve-network
  /// per-cavity control — under the given liquid cooling mode.  Both cells
  /// share the characterization, seed, and skew, so the comparison isolates
  /// the delivery model; with CoolingMode::kLiquidMax the total delivered
  /// flow (and pump energy) is identical by construction.
  [[nodiscard]] FlowComparisonResult run_flow_comparison(
      const SkewScenario& scenario, const BenchmarkSpec& workload,
      CoolingMode cooling = CoolingMode::kLiquidMax);

 private:
  SuiteConfig cfg_;
  std::shared_ptr<const FlowLut> flow_lut_;           // lazily built
  std::shared_ptr<const TalbWeightTable> talb_liquid_;
  std::shared_ptr<const TalbWeightTable> talb_air_;
};

/// Energy normalization baseline: the summary whose label matches
/// "LB (Air)"; throws ConfigError when absent.
[[nodiscard]] const PolicySummary& find_baseline(
    const std::vector<PolicySummary>& summaries, const std::string& label = "LB (Air)");

}  // namespace liquid3d
