#include "sim/scenario.hpp"

#include "common/error.hpp"

namespace liquid3d {

std::vector<SkewScenario> skewed_workload_scenarios(std::size_t layer_pairs) {
  LIQUID3D_REQUIRE(layer_pairs >= 1, "need at least one layer pair");
  return skewed_workload_scenarios_for_cores(8 * layer_pairs);
}

std::vector<SkewScenario> skewed_workload_scenarios_for_cores(
    std::size_t core_count) {
  LIQUID3D_REQUIRE(core_count >= 2, "skew scenarios need at least two cores");
  constexpr double kHotBias = 6.0;

  // Core sites enumerate layer-major: the second half of the core list is
  // the upper core die (4-layer) or the top core row (2-layer).
  SkewScenario upper{"hot-upper-die", std::vector<double>(core_count, 1.0)};
  for (std::size_t c = core_count / 2; c < core_count; ++c) {
    upper.core_bias[c] = kHotBias;
  }

  SkewScenario corner{"hot-corner", std::vector<double>(core_count, 1.0)};
  corner.core_bias[0] = kHotBias;
  corner.core_bias[1] = kHotBias;
  return {std::move(upper), std::move(corner)};
}

std::string ScenarioSpec::display_label() const {
  return label.empty() ? policy_label(policy, cooling) : label;
}

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kLoadBalancing: return "lb";
    case Policy::kReactiveMigration: return "mig";
    case Policy::kTalb: return "talb";
  }
  return "?";
}

const char* cooling_name(CoolingMode m) {
  switch (m) {
    case CoolingMode::kAir: return "air";
    case CoolingMode::kLiquidMax: return "max";
    case CoolingMode::kLiquidVar: return "var";
  }
  return "?";
}

Policy policy_from_name(std::string_view s) {
  if (s == "lb") return Policy::kLoadBalancing;
  if (s == "mig") return Policy::kReactiveMigration;
  if (s == "talb") return Policy::kTalb;
  throw ConfigError("unknown policy name '" + std::string(s) + "'");
}

CoolingMode cooling_from_name(std::string_view s) {
  if (s == "air") return CoolingMode::kAir;
  if (s == "max") return CoolingMode::kLiquidMax;
  if (s == "var") return CoolingMode::kLiquidVar;
  throw ConfigError("unknown cooling name '" + std::string(s) + "'");
}

const std::vector<std::string>& scenario_csv_header() {
  static const std::vector<std::string> header = {
      "name", "policy", "cooling", "valves", "skew", "label", "solver",
      "stack"};
  return header;
}

std::vector<std::string> to_csv_row(const ScenarioSpec& s) {
  return {s.name,  policy_name(s.policy),       cooling_name(s.cooling),
          s.valve_network ? "1" : "0", s.skew,  s.label,
          to_string(s.solver),         s.stack};
}

ScenarioSpec scenario_from_csv_row(const std::vector<std::string>& row) {
  // The solver and stack columns were appended in later schema revisions;
  // rows written before them (6 or 7 columns) still parse with default
  // values — sharded sweep checkpoints stay readable.
  const std::vector<std::string>& header = scenario_csv_header();
  LIQUID3D_REQUIRE(
      row.size() == header.size() || row.size() == header.size() - 1 ||
          row.size() == header.size() - 2,
      "scenario row arity mismatch: got " + std::to_string(row.size()) +
          " columns, expected " + std::to_string(header.size()) +
          " (or legacy " + std::to_string(header.size() - 2) + "/" +
          std::to_string(header.size() - 1) + ")");
  // Annotate parse failures with the offending column's header name, so a
  // shard/plan reader can report "row 12, column 'policy'" instead of a
  // bare failure.
  auto in_column = [&](std::size_t col, auto&& parse) -> decltype(parse()) {
    try {
      return parse();
    } catch (const ConfigError& e) {
      throw ConfigError("column '" + header[col] + "': " + e.what());
    }
  };
  ScenarioSpec s;
  s.name = row[0];
  s.policy = in_column(1, [&] { return policy_from_name(row[1]); });
  s.cooling = in_column(2, [&] { return cooling_from_name(row[2]); });
  s.valve_network = in_column(3, [&]() -> bool {
    if (row[3] == "1") return true;
    if (row[3] == "0") return false;
    throw ConfigError("must be 0 or 1, got '" + row[3] + "'");
  });
  s.skew = row[4];
  s.label = row[5];
  if (row.size() > 6) {
    s.solver = in_column(6, [&] { return solver_backend_from_name(row[6]); });
  }
  if (row.size() > 7) s.stack = row[7];
  return s;
}

void apply_scenario(const ScenarioSpec& s, SimulationConfig& cfg,
                    const std::vector<StackSpec>& stacks) {
  LIQUID3D_REQUIRE(!s.valve_network || s.cooling != CoolingMode::kAir,
                   "valve-network delivery requires liquid cooling");
  cfg.policy = s.policy;
  cfg.cooling = s.cooling;
  cfg.manager.valve_network = s.valve_network;
  cfg.thermal.solver_backend = s.solver;
  cfg.label = s.display_label();
  if (!s.stack.empty()) {
    const CoolingType type = s.cooling == CoolingMode::kAir
                                 ? CoolingType::kAir
                                 : CoolingType::kLiquid;
    cfg.stack = resolve_stack_axis(s.stack, type, stacks);
  }
  if (!s.skew.empty()) {
    // Resolve against the configured system's actual core count so skews
    // work on custom stacks, not just the 8-cores-per-pair presets.
    const std::size_t cores =
        make_stack(resolved_stack_spec(cfg)).total_count(BlockType::kCore);
    bool found = false;
    for (SkewScenario& skew : skewed_workload_scenarios_for_cores(cores)) {
      if (skew.name == s.skew) {
        cfg.core_bias = std::move(skew.core_bias);
        found = true;
        break;
      }
    }
    LIQUID3D_REQUIRE(found, "unknown skew scenario '" + s.skew + "'");
  } else {
    cfg.core_bias.clear();
  }
}

std::vector<ScenarioSpec> paper_scenario_grid() {
  auto cell = [](Policy p, CoolingMode m) {
    ScenarioSpec s;
    s.name = std::string(policy_name(p)) + "-" + cooling_name(m);
    s.policy = p;
    s.cooling = m;
    return s;
  };
  return {
      cell(Policy::kLoadBalancing, CoolingMode::kAir),
      cell(Policy::kReactiveMigration, CoolingMode::kAir),
      cell(Policy::kTalb, CoolingMode::kAir),
      cell(Policy::kLoadBalancing, CoolingMode::kLiquidMax),
      cell(Policy::kReactiveMigration, CoolingMode::kLiquidMax),
      cell(Policy::kTalb, CoolingMode::kLiquidMax),
      cell(Policy::kTalb, CoolingMode::kLiquidVar),
  };
}

namespace {

/// SplitMix64 finalizer (the same mix xoshiro's recommended seeder uses).
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t cell_seed(std::uint64_t suite_seed, Policy policy,
                        CoolingMode cooling, const BenchmarkSpec& workload) {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h = mix64(suite_seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(policy) * kGolden +
                 static_cast<std::uint64_t>(cooling) + 1));
  return mix64(h ^ (fnv1a(workload.name) + static_cast<std::uint64_t>(workload.id)));
}

std::uint64_t cell_seed(std::uint64_t suite_seed, const ScenarioSpec& scenario,
                        const BenchmarkSpec& workload) {
  return cell_seed(suite_seed, scenario.policy, scenario.cooling, workload);
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry = [] {
    ScenarioRegistry r;
    for (ScenarioSpec& s : paper_scenario_grid()) r.add(std::move(s));
    return r;
  }();
  return registry;
}

void ScenarioRegistry::add(ScenarioSpec spec) {
  LIQUID3D_REQUIRE(!spec.name.empty(), "scenario needs a registry name");
  LIQUID3D_REQUIRE(find(spec.name) == nullptr,
                   "scenario '" + spec.name + "' is already registered");
  specs_.push_back(std::move(spec));
}

const ScenarioSpec* ScenarioRegistry::find(std::string_view name) const {
  for (const ScenarioSpec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const ScenarioSpec& ScenarioRegistry::at(std::string_view name) const {
  const ScenarioSpec* s = find(name);
  if (s == nullptr) {
    throw ConfigError("scenario '" + std::string(name) + "' is not registered");
  }
  return *s;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const ScenarioSpec& s : specs_) out.push_back(s.name);
  return out;
}

}  // namespace liquid3d
