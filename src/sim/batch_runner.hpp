// batch_runner.hpp — co-advance many independent simulation sessions so
// compatible ones share a thermal factorization.
//
// The evaluation grid of Sec. V is dozens of independent (policy x cooling
// x workload) cells over ONE stack geometry and ONE sampling interval.
// Their backward-Euler system matrices are identical, so running them in
// lockstep lets every thermal substep route all cells' RHS vectors through
// one cached banded Cholesky factor (BandedSpdMatrix::solve(span, nrhs))
// instead of streaming the same factor once per cell.
//
// Grouping is automatic: sessions whose conduction topology
// (ThermalModel3D::topology_fingerprint()), sampling interval, and substep
// count agree advance together; anything else falls into its own group and
// simply runs serially.  Scheduling, power, control, and metrics stay
// entirely per-session — only the inner linear solve is shared — and the
// multi-RHS kernel replicates single-RHS arithmetic per system, so a
// BatchRunner's results are BIT-IDENTICAL to serial Simulator::run() calls
// (locked in by tests/test_session_batch.cpp).
#pragma once

#include <memory>
#include <vector>

#include "sim/session.hpp"
#include "thermal/batch_stepper.hpp"

namespace liquid3d {

class BatchRunner {
 public:
  BatchRunner() = default;

  /// Construct a session for `cfg` and enqueue it; returns its index.
  std::size_t add(SimulationConfig cfg);
  /// Enqueue an existing (not yet initialized) session; returns its index.
  std::size_t add(std::unique_ptr<SimulationSession> session);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] SimulationSession& session(std::size_t i) {
    return *sessions_.at(i);
  }
  [[nodiscard]] const SimulationSession& session(std::size_t i) const {
    return *sessions_.at(i);
  }

  /// Initialize and run every session to completion, co-advancing each
  /// compatible group in lockstep.  Results are in add order.
  std::vector<SimulationResult> run();

  /// Lockstep groups formed by the last run().
  [[nodiscard]] std::size_t group_count() const { return group_count_; }
  /// Shared-solve statistics of the underlying stepper.
  [[nodiscard]] const BatchThermalStepper& stepper() const { return stepper_; }

 private:
  std::vector<std::unique_ptr<SimulationSession>> sessions_;
  BatchThermalStepper stepper_;
  std::size_t group_count_ = 0;
  // Per-run scratch.
  std::vector<SimulationSession*> active_;
  std::vector<ThermalModel3D*> models_;
};

}  // namespace liquid3d
