#include "sim/characterization_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "control/characterize.hpp"
#include "coolant/pump.hpp"
#include "thermal/solver/backend.hpp"

namespace liquid3d {

namespace {

void append(std::string& key, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g,", v);
  key += buf;
}

void append(std::string& key, std::size_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%zu,", v);
  key += buf;
}

// Every numeric parameter the characterization harness consumes.  The grid
// resolution matters (steady temperatures are grid-dependent) and so do the
// solver knobs (direct vs pseudo-transient paths agree only to tolerance).
// `layer_count` is the stack's layer count — needed to resolve the backend
// the model will actually run with.
void append_thermal(std::string& key, const ThermalModelParams& t,
                    std::size_t layer_count) {
  append(key, t.grid_rows);
  append(key, t.grid_cols);
  append(key, t.silicon_conductivity);
  append(key, t.silicon_volumetric_heat_capacity);
  append(key, t.bond_conductivity);
  append(key, t.cavity_wall_conductivity);
  append(key, t.inlet_temperature);
  append(key, t.ambient_temperature);
  append(key, t.channel_params.beol_thickness);
  append(key, t.channel_params.beol_conductivity);
  append(key, t.channel_params.heat_transfer_coeff);
  append(key, t.coolant.heat_capacity);
  append(key, t.coolant.density);
  append(key, t.coolant.conductivity);
  append(key, t.coolant.dynamic_viscosity);
  append(key, t.tim_thickness);
  append(key, t.tim_conductivity);
  append(key, t.spreader_capacitance);
  append(key, t.sink_capacitance);
  append(key, t.spreader_to_sink_resistance);
  append(key, t.sink_to_ambient_resistance);
  key += t.alternate_flow_direction ? "alt," : "noalt,";
  append(key, t.fluid_tolerance);
  append(key, t.max_fluid_iterations);
  append(key, t.steady_fluid_iterations);
  append(key, t.steady_pseudo_dt);
  append(key, t.steady_tolerance);
  append(key, t.max_steady_iterations);
  key += t.direct_steady_solver ? "direct," : "pseudo,";
  // Backend axis: the direct and iterative paths agree only to tolerance,
  // so artifacts built under one must not be served to the other.  Keyed on
  // the *resolved* backend — a kAuto config and an explicit request that
  // resolve identically build bitwise-identical artifacts and must share
  // one cache entry.  The PCG knobs enter the key only when the resolved
  // backend actually consumes them, for the same sharing reason.
  const SolverBackend resolved = resolve_solver_backend(
      t.solver_backend, t.grid_rows * t.grid_cols * layer_count,
      t.grid_cols * layer_count);
  key += to_string(resolved);
  key += ",";
  if (resolved == SolverBackend::kPcg) {
    append(key, t.pcg.tolerance);
    append(key, t.pcg.max_iterations);
    key += to_string(t.pcg.preconditioner);
    key += ",";
    append(key, t.pcg.ssor_omega);
  }
}

void append_power(std::string& key, const PowerModelParams& p) {
  append(key, p.core_active_w);
  append(key, p.core_idle_w);
  append(key, p.core_sleep_w);
  append(key, p.l2_w);
  append(key, p.crossbar_max_w);
  append(key, p.crossbar_floor_frac);
  append(key, p.misc_w_per_m2);
  append(key, p.core_leak_ref_w);
  append(key, p.l2_leak_ref_w);
  append(key, p.crossbar_leak_ref_w);
  append(key, p.misc_leak_ref_w_per_m2);
  append(key, p.leakage.reference_temperature);
  append(key, p.leakage.linear_coeff);
  append(key, p.leakage.quadratic_coeff);
}

void append_system(std::string& key, const SimulationConfig& cfg, bool liquid) {
  // The geometry enters the key as the canonical stack fingerprint, so any
  // two configurations that build the same stack — via layer_pairs, a preset
  // spec, or a stack file — share characterization artifacts, and custom
  // stacks can never collide with the Niagara presets.
  const Stack3D stack = make_simulation_stack(cfg);
  char fp[24];
  std::snprintf(fp, sizeof fp, "%016llx,",
                static_cast<unsigned long long>(stack_fingerprint(stack)));
  key += fp;
  key += liquid ? "liquid," : "air,";
  key += to_string(cfg.delivery_mode);
  key += ",";
  append_thermal(key, cfg.thermal, stack.layer_count());
  append_power(key, cfg.power);
}

std::shared_ptr<const FlowLut> build_flow_lut(const SimulationConfig& cfg) {
  LIQUID3D_REQUIRE(cfg.cooling != CoolingMode::kAir,
                   "flow LUT only applies to liquid cooling");
  const Stack3D stack = make_simulation_stack(cfg);
  // One independent harness (and thermal model) per characterization worker.
  auto factory = [&cfg, &stack]() {
    return std::make_unique<CharacterizationHarness>(
        stack, cfg.thermal, cfg.power, PumpModel::laing_ddc(), cfg.delivery_mode);
  };
  return std::make_shared<const FlowLut>(
      characterize_flow_lut(factory, cfg.metrics.target_c - cfg.manager.lut_margin_c,
                            25, cfg.characterization_threads));
}

std::shared_ptr<const TalbWeightTable> build_talb_weights(
    const SimulationConfig& cfg) {
  const Stack3D stack = make_simulation_stack(cfg);
  const bool liquid = cfg.cooling != CoolingMode::kAir;
  std::optional<CharacterizationHarness> harness;
  if (liquid) {
    harness.emplace(stack, cfg.thermal, cfg.power, PumpModel::laing_ddc(),
                    cfg.delivery_mode);
  } else {
    harness.emplace(stack, cfg.thermal, cfg.power);
  }
  const std::size_t setting = liquid ? harness->setting_count() / 2 : 0;
  const double t_ref =
      liquid ? cfg.thermal.inlet_temperature : cfg.thermal.ambient_temperature;

  const std::vector<double> levels = {0.3, 0.6, 0.9};
  std::vector<double> tmax_at_level;
  std::vector<std::vector<double>> weights_at_level;
  for (double u : levels) {
    const std::vector<double> temps = harness->steady_core_temps(u, setting);
    tmax_at_level.push_back(*std::max_element(temps.begin(), temps.end()));
    weights_at_level.push_back(TalbWeightTable::weights_from_temps(temps, t_ref));
  }

  std::vector<TalbWeightTable::Band> bands;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double upper = (i + 1 < levels.size())
                             ? 0.5 * (tmax_at_level[i] + tmax_at_level[i + 1])
                             : std::numeric_limits<double>::infinity();
    bands.push_back({upper, weights_at_level[i]});
  }
  return std::make_shared<const TalbWeightTable>(std::move(bands));
}

}  // namespace

std::string CharacterizationCache::flow_lut_key(const SimulationConfig& cfg) {
  std::string key = "lut:";
  append_system(key, cfg, /*liquid=*/true);
  append(key, cfg.metrics.target_c - cfg.manager.lut_margin_c);
  append(key, cfg.characterization_threads);
  return key;
}

std::string CharacterizationCache::talb_key(const SimulationConfig& cfg) {
  std::string key = "talb:";
  append_system(key, cfg, cfg.cooling != CoolingMode::kAir);
  return key;
}

template <typename T, typename Build>
std::shared_ptr<const T> CharacterizationCache::get_or_build(
    std::array<Shard<T>, kShardCount>& shards, const std::string& key,
    Build&& build) {
  Shard<T>& shard = shards[std::hash<std::string>{}(key) % kShardCount];
  std::promise<std::shared_ptr<const T>> promise;
  std::shared_future<std::shared_ptr<const T>> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      future = promise.get_future().share();
      shard.entries.emplace(key, future);
      builder = true;
    } else {
      future = it->second;
    }
  }
  if (builder) {
    // The expensive part runs outside the lock; same-key requesters block
    // on the shared future, everyone else proceeds.
    try {
      promise.set_value(build());
    } catch (...) {
      // Un-publish before propagating so the next requester retries the
      // build; waiters already holding the future see the exception.
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.entries.erase(key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  }
  return future.get();
}

template <typename T>
std::size_t CharacterizationCache::shard_size(
    const std::array<Shard<T>, kShardCount>& shards) {
  std::size_t total = 0;
  for (const Shard<T>& shard : shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

template <typename T>
void CharacterizationCache::shard_clear(
    std::array<Shard<T>, kShardCount>& shards) {
  for (Shard<T>& shard : shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
  }
}

std::shared_ptr<const FlowLut> CharacterizationCache::flow_lut(
    const SimulationConfig& cfg) {
  // Validate before the lookup: the key tags every flow LUT as liquid, so an
  // air configuration must fail here rather than silently hit a cached
  // liquid entry built from the same thermal/power parameters.
  LIQUID3D_REQUIRE(cfg.cooling != CoolingMode::kAir,
                   "flow LUT only applies to liquid cooling");
  return get_or_build(luts_, flow_lut_key(cfg),
                      [&cfg] { return build_flow_lut(cfg); });
}

std::shared_ptr<const TalbWeightTable> CharacterizationCache::talb_weights(
    const SimulationConfig& cfg) {
  return get_or_build(weights_, talb_key(cfg),
                      [&cfg] { return build_talb_weights(cfg); });
}

CharacterizationCache& CharacterizationCache::global() {
  static CharacterizationCache cache;
  return cache;
}

std::size_t CharacterizationCache::size() const {
  return shard_size(luts_) + shard_size(weights_);
}

void CharacterizationCache::clear() {
  shard_clear(luts_);
  shard_clear(weights_);
}

}  // namespace liquid3d
