#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

ThermalCycleCounter::ThermalCycleCounter(MetricThresholds thresholds)
    : thr_(thresholds) {}

void ThermalCycleCounter::add_sample(double temperature_c) {
  ++samples_;
  if (samples_ == 1) {
    last_extremum_ = temperature_c;
    current_ = temperature_c;
    return;
  }
  const double band = thr_.cycle_noise_band_c;
  if (direction_ == 0) {
    if (temperature_c > current_ + band) direction_ = +1;
    if (temperature_c < current_ - band) direction_ = -1;
    // Track the running extremum while direction is forming.
    if (direction_ == +1) current_ = temperature_c;
    if (direction_ == -1) current_ = temperature_c;
    return;
  }
  if (direction_ == +1) {
    if (temperature_c >= current_) {
      current_ = temperature_c;  // still rising
    } else if (current_ - temperature_c > band) {
      // Peak confirmed at current_: the upswing from the last valley.
      if (current_ - last_extremum_ >= thr_.thermal_cycle_c) ++cycles_;
      last_extremum_ = current_;
      current_ = temperature_c;
      direction_ = -1;
    }
  } else {
    if (temperature_c <= current_) {
      current_ = temperature_c;  // still falling
    } else if (temperature_c - current_ > band) {
      // Valley confirmed: the downswing from the last peak.
      if (last_extremum_ - current_ >= thr_.thermal_cycle_c) ++cycles_;
      last_extremum_ = current_;
      current_ = temperature_c;
      direction_ = +1;
    }
  }
}

MetricsCollector::MetricsCollector(std::size_t core_count, MetricThresholds thresholds)
    : thr_(thresholds) {
  LIQUID3D_REQUIRE(core_count > 0, "metrics need at least one core");
  cycle_counters_.assign(core_count, ThermalCycleCounter(thresholds));
}

void MetricsCollector::add_sample(const std::vector<double>& unit_temps,
                                  const std::vector<double>& core_temps) {
  LIQUID3D_REQUIRE(!unit_temps.empty(), "unit temperatures must be non-empty");
  LIQUID3D_REQUIRE(core_temps.size() == cycle_counters_.size(),
                   "core temperature arity mismatch");

  const auto [min_it, max_it] = std::minmax_element(unit_temps.begin(), unit_temps.end());
  const double tmax = *max_it;
  const double spread = *max_it - *min_it;

  hotspot_.add(tmax > thr_.hotspot_c);
  above_target_.add(tmax > thr_.target_c);
  gradient_.add(spread > thr_.spatial_gradient_c);
  tmax_.add(tmax);
  gradient_magnitude_.add(spread);

  for (std::size_t i = 0; i < core_temps.size(); ++i) {
    cycle_counters_[i].add_sample(core_temps[i]);
  }
}

double MetricsCollector::thermal_cycles_per_1000() const {
  std::size_t cycles = 0;
  std::size_t samples = 0;
  for (const ThermalCycleCounter& c : cycle_counters_) {
    cycles += c.cycles_above_threshold();
    samples += c.samples();
  }
  return samples > 0
             ? 1000.0 * static_cast<double>(cycles) / static_cast<double>(samples)
             : 0.0;
}

}  // namespace liquid3d
