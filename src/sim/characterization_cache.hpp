// characterization_cache.hpp — one shared home for the expensive offline
// characterization artifacts: the flow LUT (utilization x pump-setting
// steady-state map behind the variable-flow controller) and the TALB thermal
// weight table.
//
// Before this cache existed the same plumbing lived twice: static
// `Simulator::build_flow_lut` / `build_talb_weights` helpers (rebuilt per
// caller) and lazily-built members inside ExperimentSuite (shared only
// within one suite).  Both now funnel here.  Artifacts are keyed on the
// system parameters that determine them — stack geometry, delivery mode,
// thermal and power model parameters, the LUT target temperature, and the
// characterization worker count (worker count perturbs warm-start
// trajectories at the millikelvin level, so it is part of the identity) —
// never on the policy, workload, seed, or duration of the run that happens
// to trigger the build.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "control/flow_lut.hpp"
#include "control/talb_weights.hpp"
#include "sim/session.hpp"

namespace liquid3d {

class CharacterizationCache {
 public:
  /// Flow LUT for the configuration's system (built on miss; liquid
  /// configurations only).
  [[nodiscard]] std::shared_ptr<const FlowLut> flow_lut(
      const SimulationConfig& cfg);

  /// TALB weight table for the configuration's system (built on miss; the
  /// cooling type selects the liquid or air characterization harness).
  [[nodiscard]] std::shared_ptr<const TalbWeightTable> talb_weights(
      const SimulationConfig& cfg);

  /// Process-wide instance used by sessions whose config carries no
  /// pre-built artifacts.  Deterministic: a cached artifact is bit-identical
  /// to a freshly built one for the same key.
  [[nodiscard]] static CharacterizationCache& global();

  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Cache keys (exposed for tests): every parameter that feeds the build.
  [[nodiscard]] static std::string flow_lut_key(const SimulationConfig& cfg);
  [[nodiscard]] static std::string talb_key(const SimulationConfig& cfg);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const FlowLut>> luts_;
  std::map<std::string, std::shared_ptr<const TalbWeightTable>> weights_;
};

}  // namespace liquid3d
