// characterization_cache.hpp — one shared home for the expensive offline
// characterization artifacts: the flow LUT (utilization x pump-setting
// steady-state map behind the variable-flow controller) and the TALB thermal
// weight table.
//
// Before this cache existed the same plumbing lived twice: static
// `Simulator::build_flow_lut` / `build_talb_weights` helpers (rebuilt per
// caller) and lazily-built members inside ExperimentSuite (shared only
// within one suite).  Both now funnel here.  Artifacts are keyed on the
// system parameters that determine them — stack geometry, delivery mode,
// thermal and power model parameters, the LUT target temperature, and the
// characterization worker count (worker count perturbs warm-start
// trajectories at the millikelvin level, so it is part of the identity) —
// never on the policy, workload, seed, or duration of the run that happens
// to trigger the build.
//
// Concurrency: the table is sharded by key hash, and a miss installs a
// shared_future under the shard lock but runs the build *outside* it.  A
// characterization build is minutes of steady solves; under the old single
// mutex (with builds under the lock) every session in the process — even
// ones whose artifact was already cached — stalled behind an unrelated
// build.  Now same-key requesters share one build (they block on its
// future and receive the same pointer), different-key requesters in other
// shards never touch the same lock, and a failed build erases its entry so
// the next requester retries instead of inheriting a poisoned future.
#pragma once

#include <array>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "control/flow_lut.hpp"
#include "control/talb_weights.hpp"
#include "sim/session.hpp"

namespace liquid3d {

class CharacterizationCache {
 public:
  /// Flow LUT for the configuration's system (built on miss; liquid
  /// configurations only).
  [[nodiscard]] std::shared_ptr<const FlowLut> flow_lut(
      const SimulationConfig& cfg);

  /// TALB weight table for the configuration's system (built on miss; the
  /// cooling type selects the liquid or air characterization harness).
  [[nodiscard]] std::shared_ptr<const TalbWeightTable> talb_weights(
      const SimulationConfig& cfg);

  /// Process-wide instance used by sessions whose config carries no
  /// pre-built artifacts.  Deterministic: a cached artifact is bit-identical
  /// to a freshly built one for the same key.
  [[nodiscard]] static CharacterizationCache& global();

  /// Entries across both tables, including builds still in flight.
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Cache keys (exposed for tests): every parameter that feeds the build.
  [[nodiscard]] static std::string flow_lut_key(const SimulationConfig& cfg);
  [[nodiscard]] static std::string talb_key(const SimulationConfig& cfg);

 private:
  static constexpr std::size_t kShardCount = 16;

  /// One lock stripe: entries hold futures (not values) so a key's first
  /// requester can publish "build in progress" and release the lock before
  /// doing the expensive work.
  template <typename T>
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::shared_future<std::shared_ptr<const T>>> entries;
  };

  template <typename T, typename Build>
  static std::shared_ptr<const T> get_or_build(
      std::array<Shard<T>, kShardCount>& shards, const std::string& key,
      Build&& build);

  template <typename T>
  static std::size_t shard_size(const std::array<Shard<T>, kShardCount>& shards);

  template <typename T>
  static void shard_clear(std::array<Shard<T>, kShardCount>& shards);

  std::array<Shard<FlowLut>, kShardCount> luts_;
  std::array<Shard<TalbWeightTable>, kShardCount> weights_;
};

}  // namespace liquid3d
