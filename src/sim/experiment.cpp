#include "sim/experiment.hpp"

#include <algorithm>
#include <iterator>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "sim/batch_runner.hpp"

namespace liquid3d {

std::vector<PolicyConfig> paper_policy_grid() {
  return {
      {Policy::kLoadBalancing, CoolingMode::kAir},
      {Policy::kReactiveMigration, CoolingMode::kAir},
      {Policy::kTalb, CoolingMode::kAir},
      {Policy::kLoadBalancing, CoolingMode::kLiquidMax},
      {Policy::kReactiveMigration, CoolingMode::kLiquidMax},
      {Policy::kTalb, CoolingMode::kLiquidMax},
      {Policy::kTalb, CoolingMode::kLiquidVar},
  };
}

namespace {

ScenarioSpec scenario_of(PolicyConfig pc) {
  ScenarioSpec s;
  s.name = std::string(policy_name(pc.policy)) + "-" + cooling_name(pc.cooling);
  s.policy = pc.policy;
  s.cooling = pc.cooling;
  return s;
}

double mean_over(const std::vector<SimulationResult>& rs,
                 double (SimulationResult::*field)) {
  double acc = 0.0;
  for (const SimulationResult& r : rs) acc += r.*field;
  return rs.empty() ? 0.0 : acc / static_cast<double>(rs.size());
}

}  // namespace

double PolicySummary::mean_hotspot_percent() const {
  return mean_over(per_workload, &SimulationResult::hotspot_percent);
}
double PolicySummary::max_hotspot_percent() const {
  double best = 0.0;
  for (const SimulationResult& r : per_workload)
    best = std::max(best, r.hotspot_percent);
  return best;
}
double PolicySummary::mean_above_target_percent() const {
  return mean_over(per_workload, &SimulationResult::above_target_percent);
}
double PolicySummary::mean_gradient_percent() const {
  return mean_over(per_workload, &SimulationResult::spatial_gradient_percent);
}
double PolicySummary::mean_cycles_per_1000() const {
  return mean_over(per_workload, &SimulationResult::thermal_cycles_per_1000);
}
double PolicySummary::total_chip_energy() const {
  double acc = 0.0;
  for (const SimulationResult& r : per_workload) acc += r.chip_energy_j;
  return acc;
}
double PolicySummary::total_pump_energy() const {
  double acc = 0.0;
  for (const SimulationResult& r : per_workload) acc += r.pump_energy_j;
  return acc;
}
double PolicySummary::total_throughput() const {
  double acc = 0.0;
  for (const SimulationResult& r : per_workload) acc += r.throughput_per_s;
  return acc;
}

ExperimentSuite::ExperimentSuite(SuiteConfig cfg) : cfg_(std::move(cfg)) {}

SimulationConfig ExperimentSuite::make_config(const ScenarioSpec& scenario,
                                              const BenchmarkSpec& workload) {
  SimulationConfig cfg = cfg_.base;
  cfg.layer_pairs = cfg_.layer_pairs;
  apply_scenario(scenario, cfg, cfg_.stacks);
  cfg.benchmark = workload;
  cfg.duration = cfg_.duration;
  cfg.seed = cell_seed(cfg_.seed, scenario, workload);
  cfg.dpm.enabled = cfg_.dpm_enabled;

  // Attach the shared characterization artifacts: every cell of one system
  // resolves to the same cache entries, so sessions never rebuild them.
  if (scenario.cooling != CoolingMode::kAir) {
    cfg.flow_lut = cache_.flow_lut(cfg);
    if (scenario.policy == Policy::kTalb) {
      cfg.talb_weights = cache_.talb_weights(cfg);
    }
  } else if (scenario.policy == Policy::kTalb) {
    cfg.talb_weights = cache_.talb_weights(cfg);
  }
  return cfg;
}

SimulationConfig ExperimentSuite::make_config(PolicyConfig policy,
                                              const BenchmarkSpec& workload) {
  return make_config(scenario_of(policy), workload);
}

std::vector<SimulationResult> ExperimentSuite::run_cells(
    std::vector<SimulationConfig> cells) {
  if (cfg_.execution == SuiteExecution::kBatched) {
    BatchRunner batch;
    for (SimulationConfig& cell : cells) batch.add(std::move(cell));
    return batch.run();
  }
  std::vector<SimulationResult> results(cells.size());
  ThreadPool pool(cfg_.worker_threads == 0 ? ThreadPool::default_concurrency()
                                           : cfg_.worker_threads);
  pool.parallel_for(0, cells.size(), [&](std::size_t i) {
    Simulator sim(cells[i]);
    results[i] = sim.run();
  });
  return results;
}

std::vector<PolicySummary> ExperimentSuite::run(
    const std::vector<ScenarioSpec>& scenarios,
    const std::vector<BenchmarkSpec>& workloads) {
  // Build every cell's config up front, on this thread: make_config lazily
  // fills the characterization cache (flow LUT, TALB weights), and doing
  // that here keeps the fan-out workers free of shared mutable state.
  std::vector<SimulationConfig> cells;
  cells.reserve(scenarios.size() * workloads.size());
  for (const ScenarioSpec& sc : scenarios) {
    for (const BenchmarkSpec& wl : workloads) {
      cells.push_back(make_config(sc, wl));
    }
  }

  std::vector<SimulationResult> results = run_cells(std::move(cells));

  std::vector<PolicySummary> summaries;
  summaries.reserve(scenarios.size());
  std::size_t cursor = 0;
  for (const ScenarioSpec& sc : scenarios) {
    PolicySummary summary;
    summary.label = sc.display_label();
    summary.per_workload.assign(
        std::make_move_iterator(results.begin() + static_cast<std::ptrdiff_t>(cursor)),
        std::make_move_iterator(results.begin() +
                                static_cast<std::ptrdiff_t>(cursor + workloads.size())));
    cursor += workloads.size();
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

std::vector<PolicySummary> ExperimentSuite::run(
    const std::vector<PolicyConfig>& policies,
    const std::vector<BenchmarkSpec>& workloads) {
  std::vector<ScenarioSpec> scenarios;
  scenarios.reserve(policies.size());
  for (const PolicyConfig& pc : policies) scenarios.push_back(scenario_of(pc));
  return run(scenarios, workloads);
}

FlowComparisonResult ExperimentSuite::run_flow_comparison(
    const SkewScenario& scenario, const BenchmarkSpec& workload,
    CoolingMode cooling) {
  LIQUID3D_REQUIRE(cooling != CoolingMode::kAir,
                   "flow comparison requires a liquid stack");
  // Two scenarios differing ONLY in the delivery axis: cell_seed ignores
  // valves/skew, so both arms replay the identical workload trace — a base
  // config with valves already enabled cannot silently turn the "uniform"
  // arm into a second valved run.  A canonical skew binds by name through
  // the spec; a caller-supplied bias vector is applied directly.
  const bool canonical = [&] {
    for (const SkewScenario& s : skewed_workload_scenarios(cfg_.layer_pairs)) {
      if (s.name == scenario.name) return s.core_bias == scenario.core_bias;
    }
    return false;
  }();

  ScenarioSpec uniform;
  uniform.name = std::string("lb-") + cooling_name(cooling) + "/" + scenario.name +
                 "/uniform";
  uniform.policy = Policy::kLoadBalancing;
  uniform.cooling = cooling;
  uniform.valve_network = false;
  if (canonical) uniform.skew = scenario.name;
  uniform.label = policy_label(uniform.policy, cooling) + " [uniform]";

  ScenarioSpec valved = uniform;
  valved.name = std::string("lb-") + cooling_name(cooling) + "/" + scenario.name +
                "/valved";
  valved.valve_network = true;
  valved.label = policy_label(valved.policy, cooling) + " [valved]";

  std::vector<SimulationConfig> cells = {make_config(uniform, workload),
                                         make_config(valved, workload)};
  if (!canonical) {
    for (SimulationConfig& cell : cells) cell.core_bias = scenario.core_bias;
  }
  std::vector<SimulationResult> results = run_cells(std::move(cells));

  FlowComparisonResult r;
  r.scenario = scenario.name;
  r.uniform = std::move(results[0]);
  r.valved = std::move(results[1]);
  return r;
}

const PolicySummary& find_baseline(const std::vector<PolicySummary>& summaries,
                                   const std::string& label) {
  for (const PolicySummary& s : summaries) {
    if (s.label == label) return s;
  }
  throw ConfigError("baseline policy '" + label + "' not found in suite results");
}

}  // namespace liquid3d
