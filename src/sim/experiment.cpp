#include "sim/experiment.hpp"

#include <algorithm>
#include <iterator>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace liquid3d {

std::vector<PolicyConfig> paper_policy_grid() {
  return {
      {Policy::kLoadBalancing, CoolingMode::kAir},
      {Policy::kReactiveMigration, CoolingMode::kAir},
      {Policy::kTalb, CoolingMode::kAir},
      {Policy::kLoadBalancing, CoolingMode::kLiquidMax},
      {Policy::kReactiveMigration, CoolingMode::kLiquidMax},
      {Policy::kTalb, CoolingMode::kLiquidMax},
      {Policy::kTalb, CoolingMode::kLiquidVar},
  };
}

namespace {
double mean_over(const std::vector<SimulationResult>& rs,
                 double (SimulationResult::*field)) {
  double acc = 0.0;
  for (const SimulationResult& r : rs) acc += r.*field;
  return rs.empty() ? 0.0 : acc / static_cast<double>(rs.size());
}
}  // namespace

double PolicySummary::mean_hotspot_percent() const {
  return mean_over(per_workload, &SimulationResult::hotspot_percent);
}
double PolicySummary::max_hotspot_percent() const {
  double best = 0.0;
  for (const SimulationResult& r : per_workload)
    best = std::max(best, r.hotspot_percent);
  return best;
}
double PolicySummary::mean_above_target_percent() const {
  return mean_over(per_workload, &SimulationResult::above_target_percent);
}
double PolicySummary::mean_gradient_percent() const {
  return mean_over(per_workload, &SimulationResult::spatial_gradient_percent);
}
double PolicySummary::mean_cycles_per_1000() const {
  return mean_over(per_workload, &SimulationResult::thermal_cycles_per_1000);
}
double PolicySummary::total_chip_energy() const {
  double acc = 0.0;
  for (const SimulationResult& r : per_workload) acc += r.chip_energy_j;
  return acc;
}
double PolicySummary::total_pump_energy() const {
  double acc = 0.0;
  for (const SimulationResult& r : per_workload) acc += r.pump_energy_j;
  return acc;
}
double PolicySummary::total_throughput() const {
  double acc = 0.0;
  for (const SimulationResult& r : per_workload) acc += r.throughput_per_s;
  return acc;
}

ExperimentSuite::ExperimentSuite(SuiteConfig cfg) : cfg_(std::move(cfg)) {}

SimulationConfig ExperimentSuite::make_config(PolicyConfig policy,
                                              const BenchmarkSpec& workload) {
  SimulationConfig cfg = cfg_.base;
  cfg.layer_pairs = cfg_.layer_pairs;
  cfg.policy = policy.policy;
  cfg.cooling = policy.cooling;
  cfg.benchmark = workload;
  cfg.duration = cfg_.duration;
  cfg.seed = cfg_.seed + static_cast<std::uint64_t>(workload.id);
  cfg.dpm.enabled = cfg_.dpm_enabled;

  if (policy.cooling != CoolingMode::kAir) {
    if (!flow_lut_) flow_lut_ = Simulator::build_flow_lut(cfg);
    cfg.flow_lut = flow_lut_;
    if (policy.policy == Policy::kTalb) {
      if (!talb_liquid_) talb_liquid_ = Simulator::build_talb_weights(cfg);
      cfg.talb_weights = talb_liquid_;
    }
  } else if (policy.policy == Policy::kTalb) {
    if (!talb_air_) talb_air_ = Simulator::build_talb_weights(cfg);
    cfg.talb_weights = talb_air_;
  }
  return cfg;
}

std::vector<PolicySummary> ExperimentSuite::run(
    const std::vector<PolicyConfig>& policies,
    const std::vector<BenchmarkSpec>& workloads) {
  // Build every cell's config up front, on this thread: make_config lazily
  // constructs the shared characterizations (flow LUT, TALB weights), and
  // doing that here keeps the fan-out workers free of shared mutable state.
  std::vector<SimulationConfig> cells;
  cells.reserve(policies.size() * workloads.size());
  for (const PolicyConfig& pc : policies) {
    for (const BenchmarkSpec& wl : workloads) {
      cells.push_back(make_config(pc, wl));
    }
  }

  std::vector<SimulationResult> results(cells.size());
  {
    ThreadPool pool(cfg_.worker_threads == 0 ? ThreadPool::default_concurrency()
                                             : cfg_.worker_threads);
    pool.parallel_for(0, cells.size(), [&](std::size_t i) {
      Simulator sim(cells[i]);
      results[i] = sim.run();
    });
  }

  std::vector<PolicySummary> summaries;
  summaries.reserve(policies.size());
  std::size_t cursor = 0;
  for (const PolicyConfig& pc : policies) {
    PolicySummary summary;
    summary.label = policy_label(pc.policy, pc.cooling);
    summary.per_workload.assign(
        std::make_move_iterator(results.begin() + static_cast<std::ptrdiff_t>(cursor)),
        std::make_move_iterator(results.begin() +
                                static_cast<std::ptrdiff_t>(cursor + workloads.size())));
    cursor += workloads.size();
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

std::vector<SkewScenario> skewed_workload_scenarios(std::size_t layer_pairs) {
  LIQUID3D_REQUIRE(layer_pairs >= 1, "need at least one layer pair");
  const std::size_t cores = 8 * layer_pairs;
  constexpr double kHotBias = 6.0;

  // Core sites enumerate layer-major: the second half of the core list is
  // the upper core die (4-layer) or the top core row (2-layer).
  SkewScenario upper{"hot-upper-die", std::vector<double>(cores, 1.0)};
  for (std::size_t c = cores / 2; c < cores; ++c) upper.core_bias[c] = kHotBias;

  SkewScenario corner{"hot-corner", std::vector<double>(cores, 1.0)};
  corner.core_bias[0] = kHotBias;
  corner.core_bias[1] = kHotBias;
  return {std::move(upper), std::move(corner)};
}

FlowComparisonResult ExperimentSuite::run_flow_comparison(
    const SkewScenario& scenario, const BenchmarkSpec& workload,
    CoolingMode cooling) {
  LIQUID3D_REQUIRE(cooling != CoolingMode::kAir,
                   "flow comparison requires a liquid stack");
  SimulationConfig uniform_cfg =
      make_config({Policy::kLoadBalancing, cooling}, workload);
  uniform_cfg.core_bias = scenario.core_bias;
  // Force the delivery models explicitly: a base config with valves already
  // enabled must not silently turn the "uniform" cell into a second valved
  // run (the comparison would read as a ~0 delta instead of an error).
  uniform_cfg.manager.valve_network = false;
  SimulationConfig valved_cfg = uniform_cfg;
  valved_cfg.manager.valve_network = true;

  FlowComparisonResult r;
  r.scenario = scenario.name;
  std::vector<SimulationConfig> cells = {std::move(uniform_cfg),
                                         std::move(valved_cfg)};
  std::vector<SimulationResult> results(cells.size());
  {
    ThreadPool pool(cells.size());
    pool.parallel_for(0, cells.size(), [&](std::size_t i) {
      Simulator sim(cells[i]);
      results[i] = sim.run();
    });
  }
  r.uniform = std::move(results[0]);
  r.valved = std::move(results[1]);
  r.uniform.label += " [uniform]";
  r.valved.label += " [valved]";
  return r;
}

const PolicySummary& find_baseline(const std::vector<PolicySummary>& summaries,
                                   const std::string& label) {
  for (const PolicySummary& s : summaries) {
    if (s.label == label) return s;
  }
  throw ConfigError("baseline policy '" + label + "' not found in suite results");
}

}  // namespace liquid3d
