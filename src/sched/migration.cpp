// migration.cpp — reactive thread migration (the paper's Mig baseline).
//
// Performs plain load balancing until a core crosses the 85 °C trigger, then
// moves the currently running thread to the coolest core, paying a migration
// penalty.  This is the classic activity-migration style DTM the paper
// compares against: it reacts *after* the hot spot exists, and on high
// utilization the repeated penalties cost throughput (Fig. 8).
#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace liquid3d {

namespace {

class ReactiveMigration final : public Scheduler {
 public:
  explicit ReactiveMigration(MigrationParams params)
      : params_(params), lb_(make_load_balancer(params.lb)) {}

  [[nodiscard]] std::string name() const override { return "Mig"; }

  void dispatch(std::vector<Thread> arrivals, CoreQueues& queues,
                const SchedulerContext& ctx) override {
    lb_->dispatch(std::move(arrivals), queues, ctx);
  }

  void manage(CoreQueues& queues, const SchedulerContext& ctx) override {
    lb_->manage(queues, ctx);
    if (ctx.core_temperature.size() != queues.core_count()) return;

    // Coolest core as migration target.
    std::size_t coolest = 0;
    double coolest_t = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < queues.core_count(); ++c) {
      if (ctx.core_temperature[c] < coolest_t) {
        coolest_t = ctx.core_temperature[c];
        coolest = c;
      }
    }

    for (std::size_t c = 0; c < queues.core_count(); ++c) {
      if (ctx.core_temperature[c] < params_.trigger_temperature) continue;
      if (c == coolest) continue;
      if (ctx.core_temperature[c] - coolest_t < params_.min_improvement) continue;
      if (queues.length(c) == 0) continue;
      Thread t = queues.pop_front(c);  // the running thread
      t.remaining += params_.penalty;
      ++t.migrations;
      queues.push_front(coolest, t);
      ++migrations_;
    }
  }

  [[nodiscard]] std::size_t migration_count() const override { return migrations_; }

 private:
  MigrationParams params_;
  std::unique_ptr<Scheduler> lb_;
  std::size_t migrations_ = 0;
};

}  // namespace

std::unique_ptr<Scheduler> make_reactive_migration(MigrationParams p) {
  return std::make_unique<ReactiveMigration>(p);
}

}  // namespace liquid3d
