// talb.cpp — temperature-aware weighted load balancing (the paper's novel
// scheduler, Sec. IV "Job Scheduling").
//
// TALB keeps the load balancing algorithm intact and only changes how queue
// lengths are computed (Eq. 8):
//     l_weighted^i = l_queue^i * w_thermal^i(T(k)).
// Cores at thermally disadvantaged positions (higher effective thermal
// resistance) receive weights > 1, so their queues look longer and the
// balancer steers work toward cores the coolant serves better.  The weights
// come from an offline characterization (control/talb_weights) indexed by
// the current maximum temperature, and are passed in via SchedulerContext.
#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace liquid3d {

namespace {

class Talb final : public Scheduler {
 public:
  explicit Talb(TalbParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "TALB"; }

  void dispatch(std::vector<Thread> arrivals, CoreQueues& queues,
                const SchedulerContext& ctx) override {
    for (Thread& t : arrivals) {
      queues.push_back(best_queue(queues, ctx), t);
    }
  }

  void manage(CoreQueues& queues, const SchedulerContext& ctx) override {
    for (;;) {
      const std::size_t hi = worst_queue(queues, ctx);
      const std::size_t lo = best_queue(queues, ctx);
      if (hi == lo) break;
      if (queues.length(hi) <= 1) break;  // never move the running head
      const double w_hi = weight(ctx, hi);
      const double w_lo = weight(ctx, lo);
      const double len_hi = static_cast<double>(queues.length(hi)) * w_hi;
      const double len_lo = static_cast<double>(queues.length(lo)) * w_lo;
      if (len_hi - len_lo <= params_.imbalance_threshold) break;
      // Moving one thread must actually reduce the imbalance.
      const double after_hi = static_cast<double>(queues.length(hi) - 1) * w_hi;
      const double after_lo = static_cast<double>(queues.length(lo) + 1) * w_lo;
      if (std::max(after_hi, after_lo) >= std::max(len_hi, len_lo)) break;
      queues.push_back(lo, queues.pop_back(hi));
    }
  }

 private:
  static double weight(const SchedulerContext& ctx, std::size_t core) {
    return core < ctx.thermal_weight.size() ? ctx.thermal_weight[core] : 1.0;
  }

  static std::size_t best_queue(const CoreQueues& queues, const SchedulerContext& ctx) {
    std::size_t best = 0;
    double best_len = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < queues.core_count(); ++c) {
      const double len = static_cast<double>(queues.length(c)) * weight(ctx, c);
      if (len < best_len) {
        best_len = len;
        best = c;
      }
    }
    return best;
  }

  static std::size_t worst_queue(const CoreQueues& queues, const SchedulerContext& ctx) {
    std::size_t worst = 0;
    double worst_len = -1.0;
    for (std::size_t c = 0; c < queues.core_count(); ++c) {
      const double len = static_cast<double>(queues.length(c)) * weight(ctx, c);
      if (len > worst_len) {
        worst_len = len;
        worst = c;
      }
    }
    return worst;
  }

  TalbParams params_;
};

}  // namespace

std::unique_ptr<Scheduler> make_talb(TalbParams p) {
  return std::make_unique<Talb>(p);
}

}  // namespace liquid3d
