#include "sched/queues.hpp"

#include "common/error.hpp"

namespace liquid3d {

CoreQueues::CoreQueues(std::size_t core_count) : queues_(core_count) {
  LIQUID3D_REQUIRE(core_count > 0, "need at least one core");
}

std::size_t CoreQueues::total_queued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

double CoreQueues::backlog_seconds(std::size_t core) const {
  double acc = 0.0;
  for (const Thread& t : queues_.at(core)) acc += t.remaining.as_s();
  return acc;
}

Thread CoreQueues::pop_front(std::size_t core) {
  auto& q = queues_.at(core);
  LIQUID3D_ASSERT(!q.empty(), "pop from empty queue");
  Thread t = q.front();
  q.pop_front();
  return t;
}

Thread CoreQueues::pop_back(std::size_t core) {
  auto& q = queues_.at(core);
  LIQUID3D_ASSERT(!q.empty(), "pop from empty queue");
  Thread t = q.back();
  q.pop_back();
  return t;
}

CoreQueues::TickResult CoreQueues::execute(SimTime interval) {
  TickResult result;
  result.busy_fraction.assign(queues_.size(), 0.0);
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    auto& q = queues_[c];
    SimTime budget = interval;
    while (budget > SimTime{} && !q.empty()) {
      Thread& head = q.front();
      if (head.remaining <= budget) {
        budget = budget - head.remaining;
        q.pop_front();
        ++result.completed;
      } else {
        head.remaining = head.remaining - budget;
        budget = SimTime{};
      }
    }
    const double used = (interval - budget).as_s();
    result.busy_fraction[c] = interval.as_s() > 0.0 ? used / interval.as_s() : 0.0;
  }
  completed_total_ += result.completed;
  return result;
}

}  // namespace liquid3d
