// load_balancer.cpp — dynamic load balancing (the paper's LB baseline).
#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace liquid3d {

namespace {

/// Index of the shortest queue (ties: lowest index, deterministic).
std::size_t shortest_queue(const CoreQueues& queues) {
  std::size_t best = 0;
  std::size_t best_len = std::numeric_limits<std::size_t>::max();
  for (std::size_t c = 0; c < queues.core_count(); ++c) {
    if (queues.length(c) < best_len) {
      best_len = queues.length(c);
      best = c;
    }
  }
  return best;
}

std::size_t longest_queue(const CoreQueues& queues) {
  std::size_t best = 0;
  std::size_t best_len = 0;
  for (std::size_t c = 0; c < queues.core_count(); ++c) {
    if (queues.length(c) > best_len) {
      best_len = queues.length(c);
      best = c;
    }
  }
  return best;
}

class LoadBalancer final : public Scheduler {
 public:
  explicit LoadBalancer(LoadBalancerParams params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "LB"; }

  void dispatch(std::vector<Thread> arrivals, CoreQueues& queues,
                const SchedulerContext& /*ctx*/) override {
    for (Thread& t : arrivals) {
      queues.push_back(shortest_queue(queues), t);
    }
  }

  void manage(CoreQueues& queues, const SchedulerContext& /*ctx*/) override {
    // Move *waiting* threads (never the running head) from the longest to
    // the shortest queue until the imbalance threshold is met.
    for (;;) {
      const std::size_t hi = longest_queue(queues);
      const std::size_t lo = shortest_queue(queues);
      if (queues.length(hi) <= queues.length(lo) + params_.imbalance_threshold) break;
      if (queues.length(hi) <= 1) break;  // only the running thread left
      queues.push_back(lo, queues.pop_back(hi));
    }
  }

 private:
  LoadBalancerParams params_;
};

}  // namespace

std::unique_ptr<Scheduler> make_load_balancer(LoadBalancerParams p) {
  return std::make_unique<LoadBalancer>(p);
}

}  // namespace liquid3d
