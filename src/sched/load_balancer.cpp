// load_balancer.cpp — dynamic load balancing (the paper's LB baseline).
#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "sched/scheduler.hpp"

namespace liquid3d {

namespace {

class LoadBalancer final : public Scheduler {
 public:
  explicit LoadBalancer(LoadBalancerParams params) : params_(std::move(params)) {
    for (double b : params_.core_bias) {
      LIQUID3D_REQUIRE(b > 0.0, "core bias entries must be positive");
    }
  }

  [[nodiscard]] std::string name() const override { return "LB"; }

  void dispatch(std::vector<Thread> arrivals, CoreQueues& queues,
                const SchedulerContext& /*ctx*/) override {
    (void)check_bias_arity(queues);
    for (Thread& t : arrivals) {
      queues.push_back(shortest_queue(queues), t);
    }
  }

  void manage(CoreQueues& queues, const SchedulerContext& /*ctx*/) override {
    // Move *waiting* threads (never the running head) from the longest to
    // the shortest queue until the imbalance threshold is met.  With a bias
    // vector the comparison uses effective (bias-divided) lengths, so the
    // balanced state keeps proportionally more load on biased cores.
    const bool biased = check_bias_arity(queues);
    for (;;) {
      const std::size_t hi = longest_queue(queues);
      const std::size_t lo = shortest_queue(queues);
      const double spread =
          effective_length(queues, hi) - effective_length(queues, lo);
      if (spread <= static_cast<double>(params_.imbalance_threshold)) break;
      if (biased) {
        // One move shifts the pair's effective spread by 1/b_hi + 1/b_lo.
        // Only move while that strictly shrinks |spread|; otherwise the
        // move overshoots past zero and the next iteration moves the same
        // thread straight back (livelock when biases are small relative to
        // the integer threshold).
        const double quantum = 1.0 / params_.core_bias[hi] + 1.0 / params_.core_bias[lo];
        if (spread <= 0.5 * quantum) break;
      }
      if (queues.length(hi) <= 1) break;  // only the running thread left
      queues.push_back(lo, queues.pop_back(hi));
    }
  }

 private:
  /// Bias active?  Also rejects a bias vector whose arity does not match
  /// the machine at the first dispatch/manage call (a short vector would
  /// otherwise throw a raw std::out_of_range mid-run, a long one would be
  /// silently truncated).
  [[nodiscard]] bool check_bias_arity(const CoreQueues& queues) const {
    if (params_.core_bias.empty()) return false;
    LIQUID3D_REQUIRE(params_.core_bias.size() == queues.core_count(),
                     "core_bias arity must equal the core count");
    return true;
  }

  [[nodiscard]] double effective_length(const CoreQueues& queues,
                                        std::size_t core) const {
    const double len = static_cast<double>(queues.length(core));
    if (params_.core_bias.empty()) return len;
    return len / params_.core_bias[core];
  }

  /// Index of the effectively shortest queue (ties: lowest index,
  /// deterministic).  With no bias this is the plain shortest queue.
  [[nodiscard]] std::size_t shortest_queue(const CoreQueues& queues) const {
    std::size_t best = 0;
    double best_len = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < queues.core_count(); ++c) {
      const double len = effective_length(queues, c);
      if (len < best_len) {
        best_len = len;
        best = c;
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t longest_queue(const CoreQueues& queues) const {
    std::size_t best = 0;
    double best_len = -1.0;
    for (std::size_t c = 0; c < queues.core_count(); ++c) {
      const double len = effective_length(queues, c);
      if (len > best_len) {
        best_len = len;
        best = c;
      }
    }
    return best;
  }

  LoadBalancerParams params_;
};

}  // namespace

std::unique_ptr<Scheduler> make_load_balancer(LoadBalancerParams p) {
  return std::make_unique<LoadBalancer>(p);
}

}  // namespace liquid3d
