// scheduler.hpp — the job scheduling policy interface (Sec. IV & V).
//
// Policies evaluated in the paper:
//   * LB    — dynamic load balancing: dispatch to the shortest queue, move
//             waiting threads when queue lengths diverge;
//   * Mig   — reactive migration: LB plus moving the running thread away
//             from any core above the 85 °C threshold;
//   * TALB  — temperature-aware weighted load balancing (the paper's
//             scheduler): identical to LB but queue lengths are multiplied
//             by per-core thermal weights before comparison.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sched/queues.hpp"
#include "workload/thread.hpp"

namespace liquid3d {

/// Snapshot of system state a policy may consult.
struct SchedulerContext {
  SimTime now{};
  /// Latest per-core temperatures [°C] (thermal sensor readings).
  std::vector<double> core_temperature;
  /// Per-core thermal weight factors (TALB); 1.0 everywhere for others.
  std::vector<double> thermal_weight;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Place newly arrived threads on queues.
  virtual void dispatch(std::vector<Thread> arrivals, CoreQueues& queues,
                        const SchedulerContext& ctx) = 0;

  /// Periodic management (rebalancing, migration) before execution.
  virtual void manage(CoreQueues& queues, const SchedulerContext& ctx) = 0;

  /// Temperature-triggered migrations performed so far (0 for non-migrating
  /// policies).
  [[nodiscard]] virtual std::size_t migration_count() const { return 0; }
};

struct LoadBalancerParams {
  /// Move waiting threads when queue lengths differ by more than this.
  std::size_t imbalance_threshold = 2;
  /// Per-core attractiveness (empty = uniform).  A core's effective queue
  /// length is its real length divided by its bias, so biased cores absorb
  /// proportionally more load — the mechanism behind the skewed-workload
  /// scenarios (hot upper die, hot corner).  All entries must be positive.
  std::vector<double> core_bias{};
};

struct MigrationParams {
  LoadBalancerParams lb{};
  double trigger_temperature = 85.0;  ///< °C (paper)
  /// Target must be at least this much cooler than the source to migrate.
  double min_improvement = 2.0;
  /// Performance cost of a migration added to the thread's remaining time
  /// (context transfer + cold caches).
  SimTime penalty = SimTime::from_ms(10);
};

struct TalbParams {
  /// Rebalance when *weighted* queue lengths differ by more than this.
  double imbalance_threshold = 2.0;
};

/// Factories.
[[nodiscard]] std::unique_ptr<Scheduler> make_load_balancer(LoadBalancerParams p = {});
[[nodiscard]] std::unique_ptr<Scheduler> make_reactive_migration(MigrationParams p = {});
[[nodiscard]] std::unique_ptr<Scheduler> make_talb(TalbParams p = {});

}  // namespace liquid3d
