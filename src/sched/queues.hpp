// queues.hpp — the multi-queue dispatch substrate (Sec. V).
//
// Modern OSes associate a dispatch queue with each hardware context; the job
// scheduler places incoming threads on queues and may move waiting threads
// between them.  Each core drains its own queue.  This class models exactly
// that: per-core FIFO queues, with the head thread being the one currently
// executing on the core.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/units.hpp"
#include "workload/thread.hpp"

namespace liquid3d {

class CoreQueues {
 public:
  explicit CoreQueues(std::size_t core_count);

  [[nodiscard]] std::size_t core_count() const { return queues_.size(); }

  void push_back(std::size_t core, Thread t) { queues_.at(core).push_back(t); }
  void push_front(std::size_t core, Thread t) { queues_.at(core).push_front(t); }

  /// Number of threads in a core's queue (including the running head).
  [[nodiscard]] std::size_t length(std::size_t core) const {
    return queues_.at(core).size();
  }
  [[nodiscard]] std::size_t total_queued() const;

  /// Remaining work in a queue [s].
  [[nodiscard]] double backlog_seconds(std::size_t core) const;

  [[nodiscard]] const std::deque<Thread>& queue(std::size_t core) const {
    return queues_.at(core);
  }

  /// Remove and return the thread currently at the head (the running one).
  /// Callers must check the queue is non-empty.
  Thread pop_front(std::size_t core);
  /// Remove and return the thread at the tail (most recently queued).
  Thread pop_back(std::size_t core);

  struct TickResult {
    std::vector<double> busy_fraction;  ///< per core, [0,1]
    std::size_t completed = 0;          ///< threads finished this tick
  };

  /// Execute one sampling interval: each core consumes up to `interval` of
  /// work from its queue, finishing threads FIFO.
  TickResult execute(SimTime interval);

  [[nodiscard]] std::size_t completed_total() const { return completed_total_; }

 private:
  std::vector<std::deque<Thread>> queues_;
  std::size_t completed_total_ = 0;
};

}  // namespace liquid3d
