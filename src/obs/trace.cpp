#include "obs/trace.hpp"

#include <chrono>
#include <mutex>

namespace liquid3d::obs {

namespace detail {
std::atomic<int> trace_enabled{0};
}

std::uint64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void set_tracing(bool on) {
  detail::trace_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t next_trace_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t next_span_id() {
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

struct TraceRing::Impl {
  mutable std::mutex mu;
  std::vector<TraceSpan> ring;
  std::size_t head = 0;   // next write slot
  std::size_t count = 0;  // spans retained (<= capacity)
};

TraceRing::TraceRing(std::size_t capacity)
    : impl_(new Impl), capacity_(capacity == 0 ? 1 : capacity) {
  impl_->ring.resize(capacity_);
}

TraceRing::~TraceRing() { delete impl_; }

TraceRing& TraceRing::global() {
  // Leaked: span recording can race process teardown from detached
  // worker threads.
  static TraceRing* g = new TraceRing();
  return *g;
}

void TraceRing::record(TraceSpan span) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->ring[impl_->head] = std::move(span);
  impl_->head = (impl_->head + 1) % capacity_;
  if (impl_->count < capacity_) ++impl_->count;
}

std::vector<TraceSpan> TraceRing::snapshot(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::size_t n =
      (limit == 0 || limit > impl_->count) ? impl_->count : limit;
  std::vector<TraceSpan> out;
  out.reserve(n);
  // Oldest retained span sits at head when full, at 0 otherwise; we
  // want the n most recent, oldest first.
  for (std::size_t i = impl_->count - n; i < impl_->count; ++i) {
    const std::size_t idx =
        (impl_->head + capacity_ - impl_->count + i) % capacity_;
    out.push_back(impl_->ring[idx]);
  }
  return out;
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->head = 0;
  impl_->count = 0;
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->count;
}

}  // namespace liquid3d::obs
