#pragma once
// Per-query tracing: spans (monotonic-clock start/end, parent ids)
// recorded into a fixed-size ring buffer, dumped on demand via the
// `trace` wire tag / `serve_ctl trace`.
//
// Recording is gated on tracing_enabled() (env LIQUID3D_TRACE, default
// off — the ring costs a mutex per span, which is fine per-query but
// not free).  Timestamps are steady-clock nanoseconds since a process
// epoch, so spans from one process compare directly but are not wall
// clock.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace liquid3d::obs {

// Nanoseconds on the monotonic clock since the first call in this
// process.  Cheap enough for per-stage stamps; never used when tracing
// is off.
std::uint64_t now_ns();

namespace detail {
extern std::atomic<int> trace_enabled;
}

inline bool tracing_enabled() {
#ifdef LIQUID3D_OBS_DISABLED
  return false;
#else
  return detail::trace_enabled.load(std::memory_order_relaxed) != 0;
#endif
}

void set_tracing(bool on);

// Fresh ids.  trace_id groups the spans of one request; span ids are
// process-unique so parent links resolve within a dump.
std::uint64_t next_trace_id();
std::uint32_t next_span_id();

struct TraceSpan {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;  // 0 = root
  std::string stage;            // "admission", "decode", "solve/rom", ...
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

// Fixed-capacity ring of completed spans.  Mutex-protected: recording
// happens once per stage per query (microseconds apart), not in solver
// inner loops, so contention is negligible and the ring stays simple.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);
  ~TraceRing();
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  static TraceRing& global();

  void record(TraceSpan span);
  // Most-recent-last; limit == 0 means all retained spans.
  std::vector<TraceSpan> snapshot(std::size_t limit = 0) const;
  void clear();
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Impl;
  Impl* impl_;
  std::size_t capacity_;
};

// RAII span: stamps start on construction, records into the global ring
// on destruction.  No-op (no clock reads) while tracing is disabled.
class ScopedSpan {
 public:
  ScopedSpan(std::uint64_t trace_id, std::uint32_t parent_id,
             const char* stage)
      : armed_(tracing_enabled()) {
    if (!armed_) return;
    span_.trace_id = trace_id;
    span_.span_id = next_span_id();
    span_.parent_id = parent_id;
    span_.stage = stage;
    span_.start_ns = now_ns();
  }
  ~ScopedSpan() { finish(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Rename mid-flight (e.g. "solve" -> "solve/rom" once the path is
  // known).
  void set_stage(const char* stage) {
    if (armed_) span_.stage = stage;
  }
  std::uint32_t span_id() const { return armed_ ? span_.span_id : 0; }

  void finish() {
    if (!armed_) return;
    armed_ = false;
    span_.end_ns = now_ns();
    TraceRing::global().record(std::move(span_));
  }

 private:
  bool armed_;
  TraceSpan span_{};
};

}  // namespace liquid3d::obs
