#pragma once
// Process-global observability: sharded-atomic counters/gauges and
// log-bucketed latency histograms with quantile readback.
//
// Design contract (see docs/observability.md):
//
//   * Counter::add is ONE relaxed fetch_add on a cache-line-padded,
//     thread-striped shard — always on.  Counters double as functional
//     statistics (ServeStats, cache hit counts), so the kill switch does
//     not gate them; their cost is already the minimum the registry
//     promises.
//   * Histogram::record, ScopedTimer's clock reads, and trace recording
//     are gated on the env/compile-time kill switch: with
//     LIQUID3D_OBS=0 (or -DLIQUID3D_OBS=OFF at configure time) they
//     reduce to a single relaxed load + branch — no clock syscalls, no
//     stores.
//   * Everything here is strictly out of band: no instrument touches
//     simulation arithmetic, so all bit-identity contracts (wire vs
//     in-process, batch vs solo, merged vs single-process) hold with
//     observability enabled or disabled.
//
// Instruments can live standalone (per-instance members, e.g. the
// ThermalService cache counters) or be registered in the process-global
// Registry for Prometheus-style text exposition.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace liquid3d::obs {

// ---------------------------------------------------------------------------
// Kill switch.

namespace detail {
// 1 = enabled (default).  Relaxed: the flag only gates telemetry, never
// synchronizes data.
extern std::atomic<int> obs_enabled;
}  // namespace detail

inline bool enabled() {
#ifdef LIQUID3D_OBS_DISABLED
  return false;
#else
  return detail::obs_enabled.load(std::memory_order_relaxed) != 0;
#endif
}

void set_enabled(bool on);

// Reads LIQUID3D_OBS ("0"/"off"/"false" disable) and LIQUID3D_TRACE
// ("1"/"on" enable span recording).  Called once at tool startup.
void init_from_env();

// Test helper: force the switch for a scope, restore on exit.
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on);
  ~ScopedEnabled();
  ScopedEnabled(const ScopedEnabled&) = delete;
  ScopedEnabled& operator=(const ScopedEnabled&) = delete;

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// Counter — monotonic, sharded.

namespace detail {
inline constexpr std::size_t kShards = 16;

struct alignas(64) Shard {
  std::atomic<std::uint64_t> v{0};
};

// Stable per-thread stripe: threads round-robin over kShards slots so
// concurrent adds from different threads rarely contend on one line.
std::size_t thread_shard();
}  // namespace detail

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    shards_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::Shard, detail::kShards> shards_;
};

// ---------------------------------------------------------------------------
// Gauge — last-write-wins scalar (also supports add/sub).

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// ---------------------------------------------------------------------------
// MaxTracker — running maximum with an independent resettable window.
// Backs the queue high-water-mark fix: `lifetime` is monotonic for the
// process, `window` reports the max since the last reset_window().

class MaxTracker {
 public:
  MaxTracker() = default;
  MaxTracker(const MaxTracker&) = delete;
  MaxTracker& operator=(const MaxTracker&) = delete;

  void observe(std::uint64_t v) {
    raise(lifetime_, v);
    raise(window_, v);
  }
  std::uint64_t lifetime() const {
    return lifetime_.load(std::memory_order_relaxed);
  }
  std::uint64_t window() const {
    return window_.load(std::memory_order_relaxed);
  }
  void reset_window() { window_.store(0, std::memory_order_relaxed); }

 private:
  static void raise(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (cur < v &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::uint64_t> lifetime_{0};
  std::atomic<std::uint64_t> window_{0};
};

// ---------------------------------------------------------------------------
// Histogram — log-bucketed over positive doubles.
//
// Buckets: 4 sub-buckets per octave (resolution factor 2^0.25 ≈ 19%),
// binary exponent clamped to [kMinExp, kMaxExp].  That spans ~9e-13
// (PCG residuals) through ~1e12 (nanosecond latencies) in one fixed
// ~2.6 KB table.  Values below the range, NaN, and non-positive
// oddities clamp into bucket 0; values above the range (and +inf) land
// in the overflow bucket (the last one).

class Histogram {
 public:
  static constexpr int kSubBuckets = 4;       // per octave
  static constexpr int kMinExp = -40;         // 2^-41 ≈ 4.5e-13 lower edge
  static constexpr int kMaxExp = 40;          // 2^40 ≈ 1.1e12 upper edge
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp + 1) * kSubBuckets + 1;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Gated on the kill switch: disabled -> one relaxed load + branch.
  void record(double v) {
    if (!enabled()) return;
    record_always(v);
  }

  // Ungated variant for tests and for callers that already checked.
  void record_always(double v);

  std::uint64_t count() const;
  double sum() const;
  // q in [0,1]; returns the midpoint of the bucket holding the q-th
  // sample (0 if empty).
  double quantile(double q) const;

  void reset();

  // Bucket geometry, exposed for the boundary tests.
  static std::size_t bucket_index(double v);
  static double bucket_lower(std::size_t idx);
  static double bucket_upper(std::size_t idx);

  std::uint64_t bucket_count(std::size_t idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---------------------------------------------------------------------------
// ScopedTimer — records elapsed seconds into a Histogram on destruction.
// When the kill switch is off it takes no clock reads at all.

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(&h), armed_(enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Record now instead of at scope exit (idempotent).
  void stop() {
    if (!armed_) return;
    armed_ = false;
    const auto end = std::chrono::steady_clock::now();
    h_->record_always(std::chrono::duration<double>(end - start_).count());
  }

 private:
  Histogram* h_;
  bool armed_;
  std::chrono::steady_clock::time_point start_{};
};

// ---------------------------------------------------------------------------
// Registry — named instruments + Prometheus-style text exposition.
//
// Lookup is find-or-create under a mutex; hot paths capture the returned
// reference once (instruments are never destroyed before process exit).

class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Prometheus-style text exposition.  Counters render as
  //   <name> <value>
  // histograms as _count/_sum plus p50/p90/p99 quantile gauges.
  std::string prometheus() const;

  // Test helper: zero every registered instrument (entries stay).
  void reset();

  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace liquid3d::obs
