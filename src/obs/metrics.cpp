#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "obs/trace.hpp"

namespace liquid3d::obs {

namespace detail {

std::atomic<int> obs_enabled{1};

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::obs_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace {

bool env_truthy(const char* v) {
  if (v == nullptr) return false;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "no") == 0 || v[0] == '\0');
}

}  // namespace

void init_from_env() {
  if (const char* v = std::getenv("LIQUID3D_OBS")) {
    set_enabled(env_truthy(v));
  }
  if (const char* v = std::getenv("LIQUID3D_TRACE")) {
    set_tracing(env_truthy(v));
  }
}

ScopedEnabled::ScopedEnabled(bool on) : prev_(enabled()) { set_enabled(on); }
ScopedEnabled::~ScopedEnabled() { set_enabled(prev_); }

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) {
    // Non-positive and NaN: below-range values clamp low, oddities
    // (NaN, inf handled below) never reach here positive.
    return 0;
  }
  if (!std::isfinite(v)) return kBuckets - 1;
  int exp = 0;
  // frexp: v = m * 2^exp with m in [0.5, 1).
  const double m = std::frexp(v, &exp);
  // Shift to m in [1, 2): value = m2 * 2^(exp-1).
  const int octave = exp - 1;
  if (octave < kMinExp) return 0;
  if (octave > kMaxExp) return kBuckets - 1;
  const double m2 = m * 2.0;  // [1, 2)
  // Sub-bucket: which of the 4 slices of [1,2) (geometric, factor
  // 2^0.25) m2 falls in.
  static const double kEdge1 = std::pow(2.0, 0.25);
  static const double kEdge2 = std::pow(2.0, 0.5);
  static const double kEdge3 = std::pow(2.0, 0.75);
  int sub = 3;
  if (m2 < kEdge1) {
    sub = 0;
  } else if (m2 < kEdge2) {
    sub = 1;
  } else if (m2 < kEdge3) {
    sub = 2;
  }
  return static_cast<std::size_t>(octave - kMinExp) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_lower(std::size_t idx) {
  if (idx >= kBuckets - 1) {
    return std::ldexp(1.0, kMaxExp + 1);  // overflow bucket starts past range
  }
  const int octave = static_cast<int>(idx / kSubBuckets) + kMinExp;
  const int sub = static_cast<int>(idx % kSubBuckets);
  return std::ldexp(1.0, octave) * std::pow(2.0, 0.25 * sub);
}

double Histogram::bucket_upper(std::size_t idx) {
  if (idx >= kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const int octave = static_cast<int>(idx / kSubBuckets) + kMinExp;
  const int sub = static_cast<int>(idx % kSubBuckets);
  return std::ldexp(1.0, octave) * std::pow(2.0, 0.25 * (sub + 1));
}

void Histogram::record_always(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Snapshot bucket counts so the walk is self-consistent even under
  // concurrent recording.
  std::array<std::uint64_t, kBuckets> snap;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0.0;
  const std::uint64_t rank =
      std::min<std::uint64_t>(total - 1,
                              static_cast<std::uint64_t>(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += snap[i];
    if (seen > rank) {
      if (i >= kBuckets - 1) return bucket_lower(i);  // overflow: lower edge
      return 0.5 * (bucket_lower(i) + bucket_upper(i));
    }
  }
  return bucket_lower(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map keeps exposition deterministically name-sorted.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Leaked on purpose: instruments referenced from other static-duration
  // objects must outlive any destructor ordering.
  static Registry* g = new Registry();
  return *g;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string Registry::prometheus() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out;
  out.reserve(1024);
  for (const auto& [name, c] : impl_->counters) {
    out += name;
    out += ' ';
    out += std::to_string(c->value());
    out += '\n';
  }
  for (const auto& [name, g] : impl_->gauges) {
    out += name;
    out += ' ';
    append_number(out, g->value());
    out += '\n';
  }
  for (const auto& [name, h] : impl_->histograms) {
    out += name;
    out += "_count ";
    out += std::to_string(h->count());
    out += '\n';
    out += name;
    out += "_sum ";
    append_number(out, h->sum());
    out += '\n';
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"0.5", 0.5},
          {"0.9", 0.9},
          {"0.99", 0.99}}) {
      out += name;
      out += "{quantile=\"";
      out += label;
      out += "\"} ";
      append_number(out, h->quantile(q));
      out += '\n';
    }
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->set(0.0);
  for (auto& [name, h] : impl_->histograms) h->reset();
}

}  // namespace liquid3d::obs
