// talb_weights.hpp — thermal weight factors for TALB (Sec. IV, Eq. 8).
//
// A core's thermal behaviour depends on where it sits: which layer, how far
// from the coolant inlet, what its neighbours dissipate.  The paper derives
// per-core weights from "the average power values for the cores to achieve
// a balanced temperature": cores that would need *less* power to stay
// balanced (thermally disadvantaged positions) get weights above 1, making
// their queues look longer so the balancer diverts work elsewhere.
//
// We characterize the equivalent quantity directly: under uniform load, a
// core's steady temperature rise over the coolant inlet is proportional to
// its effective thermal resistance R_i; the balancing power is p_i ∝ 1/R_i,
// so the weight is the normalized R_i.  Because gradients grow with load,
// the table holds one weight vector per maximum-temperature range, selected
// at runtime by the current T_max — exactly the paper's
// "w_thermal(T(k))" formulation.
#pragma once

#include <cstddef>
#include <vector>

namespace liquid3d {

class TalbWeightTable {
 public:
  struct Band {
    double tmax_upper;            ///< band applies while T_max < tmax_upper
    std::vector<double> weights;  ///< per core, mean 1
  };

  explicit TalbWeightTable(std::vector<Band> bands);

  /// Uniform weights (reduces TALB to plain LB); used for baselines and the
  /// weight-source ablation.
  [[nodiscard]] static TalbWeightTable uniform(std::size_t core_count);

  /// Weight vector for the current maximum temperature.
  [[nodiscard]] const std::vector<double>& lookup(double tmax) const;

  [[nodiscard]] std::size_t core_count() const { return bands_.front().weights.size(); }
  [[nodiscard]] const std::vector<Band>& bands() const { return bands_; }

  /// Build a weight vector from per-core steady temperatures under uniform
  /// load: w_i = normalized (T_i - T_ref).
  [[nodiscard]] static std::vector<double> weights_from_temps(
      const std::vector<double>& core_temps, double reference_temperature);

 private:
  std::vector<Band> bands_;
};

}  // namespace liquid3d
