#include "control/talb_weights.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace liquid3d {

TalbWeightTable::TalbWeightTable(std::vector<Band> bands) : bands_(std::move(bands)) {
  LIQUID3D_REQUIRE(!bands_.empty(), "weight table needs at least one band");
  const std::size_t n = bands_.front().weights.size();
  LIQUID3D_REQUIRE(n > 0, "weight vectors must be non-empty");
  for (std::size_t i = 0; i < bands_.size(); ++i) {
    LIQUID3D_REQUIRE(bands_[i].weights.size() == n, "weight arity mismatch");
    if (i > 0) {
      LIQUID3D_REQUIRE(bands_[i].tmax_upper > bands_[i - 1].tmax_upper,
                       "bands must be sorted by upper bound");
    }
    for (double w : bands_[i].weights) {
      LIQUID3D_REQUIRE(w > 0.0, "weights must be positive");
    }
  }
}

TalbWeightTable TalbWeightTable::uniform(std::size_t core_count) {
  Band band{std::numeric_limits<double>::infinity(),
            std::vector<double>(core_count, 1.0)};
  return TalbWeightTable({band});
}

const std::vector<double>& TalbWeightTable::lookup(double tmax) const {
  for (const Band& band : bands_) {
    if (tmax < band.tmax_upper) return band.weights;
  }
  return bands_.back().weights;
}

std::vector<double> TalbWeightTable::weights_from_temps(
    const std::vector<double>& core_temps, double reference_temperature) {
  LIQUID3D_REQUIRE(!core_temps.empty(), "need at least one core");
  std::vector<double> rise(core_temps.size());
  double mean = 0.0;
  for (std::size_t i = 0; i < core_temps.size(); ++i) {
    rise[i] = std::max(core_temps[i] - reference_temperature, 1e-3);
    mean += rise[i];
  }
  mean /= static_cast<double>(core_temps.size());
  std::vector<double> weights(core_temps.size());
  for (std::size_t i = 0; i < core_temps.size(); ++i) {
    weights[i] = rise[i] / mean;
  }
  return weights;
}

}  // namespace liquid3d
