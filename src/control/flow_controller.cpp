#include "control/flow_controller.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace liquid3d {

FlowRateController::FlowRateController(FlowLut lut, FlowControllerParams params)
    : lut_(std::move(lut)), params_(params) {
  LIQUID3D_REQUIRE(params_.hysteresis >= 0.0, "hysteresis must be non-negative");
}

std::size_t FlowRateController::decide(double forecast_tmax, double measured_tmax,
                                       std::size_t current) const {
  std::size_t required = lut_.required_setting(current, forecast_tmax);
  if (params_.guard_on_measured) {
    required = std::max(required, lut_.required_setting(current, measured_tmax));
  }

  if (required >= current) {
    // Scale up (or hold) immediately: under-cooling is the failure mode the
    // controller must never allow.
    return required;
  }

  // Scale down only with hysteresis margin below the current setting's
  // boundary temperature ("once we switch to a higher flow rate setting, we
  // do not decrease the flow rate until the predicted T_max is at least 2°C
  // lower than the boundary temperature between two flow rate settings"),
  // and by at most one setting per decision: the hysteresis check only
  // consults the boundary of the *current* setting, so jumping multiple
  // settings at once would skip the intermediate boundaries.  Stepping one
  // at a time re-validates every boundary on the way down.
  const double boundary = lut_.boundary(current, current);
  if (forecast_tmax <= boundary - params_.hysteresis &&
      measured_tmax <= boundary - params_.hysteresis) {
    return std::max(required, current - 1);
  }
  return current;
}

}  // namespace liquid3d
