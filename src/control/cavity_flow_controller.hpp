// cavity_flow_controller.hpp — the per-cavity half of the proactive flow
// control ensemble: per-cavity T_max observations -> valve openings.
//
// The pump setting is decided exactly as before (ThermalManager's
// FlowRateController over the FlowLut: immediate scale-up, hysteretic
// one-step scale-down) from the *global* maximum temperature — the LUT
// characterization remains valid because the valve network conserves the
// total delivered flow, so the worst cavity never receives less than the
// LUT's uniform share once the valves steer flow toward it.  This class
// adds the orthogonal valve decision: the hottest cavity's valve opens
// fully, the others close in proportion to their temperature deficit, with
// the throttle depth scaling with the observed spread.  When the spread is
// below an activation band the valves stay uniform (redistribution has
// nothing to win and valve motion costs transitions), and with no
// observations at all (valve network absent) the decision degrades to
// uniform delivery.
#pragma once

#include <cstddef>
#include <vector>

namespace liquid3d {

struct CavityFlowControllerParams {
  /// Floor for the coolest cavity's valve; keep equal to
  /// ValveNetworkParams::min_opening so commands are never clamped twice.
  double min_opening = 0.05;
  /// Per-cavity T_max spread [K] below which the valves stay uniform.
  double activation_band_c = 0.75;
  /// Spread [K] at which the coolest cavity reaches the full throttle
  /// (min_opening).  Below it the throttle depth scales linearly with the
  /// spread, so small thermal asymmetries get gentle corrections — slamming
  /// the coolest valve to the floor on a 1 K spread inverts the thermal
  /// profile by the next decision and oscillates.
  double full_scale_span_c = 8.0;
  /// Openings are quantized to this step (hottest stays exactly 1.0).
  /// Stateless chatter suppression: as temperatures drift sample to sample
  /// the raw proportional openings drift with them, and every drift beyond
  /// the actuator deadband would count a transition and restart the
  /// actuation latency; snapping to a coarse grid means only a real
  /// operating-point change crosses a quantum boundary and issues a
  /// command.
  double opening_quantum = 0.1;
};

class CavityFlowController {
 public:
  CavityFlowController(std::size_t cavity_count,
                       CavityFlowControllerParams params = {});

  /// Valve openings for the next interval from per-cavity maximum junction
  /// temperatures (arity = cavity count; empty = uniform fallback).  The
  /// hottest cavity always gets 1.0; the result is in [min_opening, 1].
  [[nodiscard]] std::vector<double> valve_openings(
      const std::vector<double>& cavity_tmax) const;
  /// Allocation-free variant for per-tick callers: writes into `out`.
  void valve_openings_into(const std::vector<double>& cavity_tmax,
                           std::vector<double>& out) const;

  [[nodiscard]] std::size_t cavity_count() const { return cavity_count_; }
  [[nodiscard]] const CavityFlowControllerParams& params() const { return params_; }

 private:
  std::size_t cavity_count_;
  CavityFlowControllerParams params_;
};

}  // namespace liquid3d
