#include "control/cavity_flow_controller.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace liquid3d {

CavityFlowController::CavityFlowController(std::size_t cavity_count,
                                           CavityFlowControllerParams params)
    : cavity_count_(cavity_count), params_(params) {
  LIQUID3D_REQUIRE(cavity_count_ > 0, "per-cavity control requires cavities");
  LIQUID3D_REQUIRE(params_.min_opening > 0.0 && params_.min_opening <= 1.0,
                   "min_opening must be in (0, 1]");
  LIQUID3D_REQUIRE(params_.activation_band_c >= 0.0,
                   "activation band must be non-negative");
  LIQUID3D_REQUIRE(params_.full_scale_span_c > 0.0,
                   "full-scale span must be positive");
  LIQUID3D_REQUIRE(params_.opening_quantum > 0.0 && params_.opening_quantum <= 1.0,
                   "opening quantum must be in (0, 1]");
}

std::vector<double> CavityFlowController::valve_openings(
    const std::vector<double>& cavity_tmax) const {
  std::vector<double> openings;
  valve_openings_into(cavity_tmax, openings);
  return openings;
}

void CavityFlowController::valve_openings_into(
    const std::vector<double>& cavity_tmax, std::vector<double>& out) const {
  out.assign(cavity_count_, 1.0);
  if (cavity_tmax.empty()) return;  // uniform fallback (no valve network)
  LIQUID3D_REQUIRE(cavity_tmax.size() == cavity_count_,
                   "cavity T_max arity must equal the cavity count");

  const auto [lo_it, hi_it] =
      std::minmax_element(cavity_tmax.begin(), cavity_tmax.end());
  const double span = *hi_it - *lo_it;
  if (span <= params_.activation_band_c) return;  // too small to act on

  // Throttle depth grows with the observed spread and saturates at the
  // full-scale span; the hottest cavity always stays fully open and the
  // others close in proportion to how far below it they sit.
  const double depth = std::min(1.0, span / params_.full_scale_span_c);
  for (std::size_t k = 0; k < cavity_count_; ++k) {
    const double deficit = (*hi_it - cavity_tmax[k]) / span;  // 0 = hottest
    const double raw = 1.0 - (1.0 - params_.min_opening) * depth * deficit;
    // Snap to the quantum grid, clamped back into the valve's physical
    // range (a quantum that does not divide 1 would otherwise round the
    // hottest cavity past fully open).
    out[k] = std::clamp(std::round(raw / params_.opening_quantum) *
                            params_.opening_quantum,
                        params_.min_opening, 1.0);
  }
}

}  // namespace liquid3d
