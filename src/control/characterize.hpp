// characterize.hpp — offline steady-state characterization of a stack.
//
// Both halves of the paper's technique rest on a pre-computed analysis of
// the target system (Sec. IV):
//   * the flow-rate look-up table needs "which flow setting cools a given
//     maximum temperature below the 80 °C target" (Fig. 5);
//   * the TALB weights need the position-dependent thermal efficiency of
//     each core ("the average power values for the cores to achieve a
//     balanced temperature").
// This harness computes steady states of a ThermalModel3D under uniform
// per-core utilization — the balanced-load operating point TALB itself
// drives the system toward — including the leakage-temperature fixed point.
// Steady solves here are *warm-started*: every converged operating point is
// snapshotted, and a new solve seeds the model from the nearest previously
// converged (utilization, flow) point.  Characterization sweeps are monotone
// in both coordinates, so pseudo-transient iteration counts collapse by an
// order of magnitude; the grid itself is sampled in parallel (one harness
// per worker) by `characterize_flow_lut`.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "control/flow_lut.hpp"
#include "coolant/flow.hpp"
#include "coolant/pump.hpp"
#include "coolant/valve_network.hpp"
#include "geom/sites.hpp"
#include "geom/stack.hpp"
#include "power/power_model.hpp"
#include "thermal/model3d.hpp"

namespace liquid3d {

class CharacterizationHarness {
 public:
  /// For liquid stacks; `delivery` maps pump settings to per-cavity flow.
  CharacterizationHarness(const Stack3D& stack, ThermalModelParams thermal_params,
                          PowerModelParams power_params, const PumpModel& pump,
                          FlowDeliveryMode delivery_mode);

  /// For air stacks (no pump; setting arguments must be 0).
  CharacterizationHarness(const Stack3D& stack, ThermalModelParams thermal_params,
                          PowerModelParams power_params);

  /// Steady maximum junction temperature under uniform core utilization
  /// `u` in [0,1] at the given pump setting.
  [[nodiscard]] double steady_tmax(double utilization, std::size_t setting);

  /// Steady maximum temperature at an explicit per-cavity flow.
  [[nodiscard]] double steady_tmax_at_flow(double utilization, VolumetricFlow per_cavity);

  /// Steady maximum temperature at an explicit per-cavity flow *vector*
  /// (valve-network operating points).  Warm-start proximity uses the mean
  /// flow, which tracks the total the pump delivers.
  [[nodiscard]] double steady_tmax_at_flows(double utilization,
                                            const std::vector<VolumetricFlow>& flows);

  /// Steady per-core temperatures (global core order) at the given setting.
  [[nodiscard]] std::vector<double> steady_core_temps(double utilization,
                                                      std::size_t setting);

  /// Smallest continuous per-cavity flow keeping T_max <= target (bisection
  /// over [lo, hi]); returns hi if even hi cannot cool the load.
  [[nodiscard]] VolumetricFlow min_flow_for_target(double utilization, double target_c,
                                                   VolumetricFlow lo, VolumetricFlow hi);

  [[nodiscard]] ThermalModel3D& model() { return model_; }
  [[nodiscard]] const FlowDelivery* delivery() const { return delivery_ ? &*delivery_ : nullptr; }
  [[nodiscard]] const std::vector<BlockSite>& core_sites() const { return cores_; }
  [[nodiscard]] std::size_t setting_count() const;
  [[nodiscard]] const PowerModel& power_model() const { return power_; }

  /// Apply the uniform-utilization power assignment to the model, with
  /// leakage evaluated at the given block-temperature guess source (current
  /// model temperatures).
  void apply_uniform_power(double utilization);

  /// Warm-starting from previously converged operating points is on by
  /// default; disable to force every solve to continue from whatever state
  /// the model happens to be in (the seed behaviour).
  void set_warm_start(bool enabled) { warm_start_ = enabled; }
  [[nodiscard]] bool warm_start() const { return warm_start_; }
  /// Fold the leakage-power update into the pseudo-transient continuation
  /// (one steady run per operating point) instead of the seed's outer
  /// power/solve fixed point (3-4 runs).  On by default.
  void set_fused_leakage(bool enabled) { fused_leakage_ = enabled; }
  [[nodiscard]] bool fused_leakage() const { return fused_leakage_; }
  /// Number of converged operating points currently cached.
  [[nodiscard]] std::size_t warm_point_count() const { return warm_points_.size(); }

 private:
  struct WarmPoint {
    double utilization;
    double flow_ml_per_min;  ///< 0 for air stacks
    ThermalState state;
  };

  [[nodiscard]] double solve_with_leakage_fixed_point(double utilization);
  [[nodiscard]] double solve_at_operating_point(double utilization,
                                                double flow_ml_per_min);
  void seed_from_nearest(double utilization, double flow_ml_per_min);
  void remember_point(double utilization, double flow_ml_per_min);

  ThermalModel3D model_;
  PowerModel power_;
  std::optional<FlowDelivery> delivery_;
  std::vector<BlockSite> cores_;
  bool warm_start_ = true;
  bool fused_leakage_ = true;
  std::vector<WarmPoint> warm_points_;
};

/// Factory producing an independent harness per worker thread (each worker
/// owns its own ThermalModel3D — no shared mutable state).
using HarnessFactory = std::function<std::unique_ptr<CharacterizationHarness>()>;

/// Sample the steady T_max(u, s) characterization grid.  Whole setting rows
/// are distributed over `threads` workers (0 = hardware concurrency); each
/// worker sweeps its rows utilization-ascending so warm starts stay within
/// a few degrees of the seed state.  Returns grid[setting][u_index].
[[nodiscard]] std::vector<std::vector<double>> sample_tmax_grid(
    const HarnessFactory& make_harness, std::size_t setting_count,
    std::size_t utilization_points, std::size_t threads = 0);

/// Full flow-LUT characterization: parallel grid sampling + table build.
[[nodiscard]] FlowLut characterize_flow_lut(const HarnessFactory& make_harness,
                                            double target_temperature,
                                            std::size_t utilization_points = 41,
                                            std::size_t threads = 0);

/// Per-cavity valve sensitivity grid: steady T_max with cavity k's valve
/// throttled to each sampled opening while every other valve stays fully
/// open (flows renormalized by the valve network, so the total delivered
/// flow is the setting's).  Result: grid[cavity][opening_index], openings
/// ascending from `min_opening` to 1.  Cavity rows are fanned out over the
/// ThreadPool (one harness per worker), mirroring sample_tmax_grid.
struct CavitySkewGrid {
  std::vector<double> openings;            ///< sampled opening values
  std::vector<std::vector<double>> tmax;   ///< [cavity][opening_index]
};
[[nodiscard]] CavitySkewGrid sample_cavity_skew_grid(
    const HarnessFactory& make_harness, const ValveNetwork& network,
    std::size_t setting, double utilization, std::size_t opening_points = 5,
    std::size_t threads = 0);

}  // namespace liquid3d
