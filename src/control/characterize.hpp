// characterize.hpp — offline steady-state characterization of a stack.
//
// Both halves of the paper's technique rest on a pre-computed analysis of
// the target system (Sec. IV):
//   * the flow-rate look-up table needs "which flow setting cools a given
//     maximum temperature below the 80 °C target" (Fig. 5);
//   * the TALB weights need the position-dependent thermal efficiency of
//     each core ("the average power values for the cores to achieve a
//     balanced temperature").
// This harness computes steady states of a ThermalModel3D under uniform
// per-core utilization — the balanced-load operating point TALB itself
// drives the system toward — including the leakage-temperature fixed point.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "coolant/flow.hpp"
#include "coolant/pump.hpp"
#include "geom/sites.hpp"
#include "geom/stack.hpp"
#include "power/power_model.hpp"
#include "thermal/model3d.hpp"

namespace liquid3d {

class CharacterizationHarness {
 public:
  /// For liquid stacks; `delivery` maps pump settings to per-cavity flow.
  CharacterizationHarness(const Stack3D& stack, ThermalModelParams thermal_params,
                          PowerModelParams power_params, const PumpModel& pump,
                          FlowDeliveryMode delivery_mode);

  /// For air stacks (no pump; setting arguments must be 0).
  CharacterizationHarness(const Stack3D& stack, ThermalModelParams thermal_params,
                          PowerModelParams power_params);

  /// Steady maximum junction temperature under uniform core utilization
  /// `u` in [0,1] at the given pump setting.
  [[nodiscard]] double steady_tmax(double utilization, std::size_t setting);

  /// Steady maximum temperature at an explicit per-cavity flow.
  [[nodiscard]] double steady_tmax_at_flow(double utilization, VolumetricFlow per_cavity);

  /// Steady per-core temperatures (global core order) at the given setting.
  [[nodiscard]] std::vector<double> steady_core_temps(double utilization,
                                                      std::size_t setting);

  /// Smallest continuous per-cavity flow keeping T_max <= target (bisection
  /// over [lo, hi]); returns hi if even hi cannot cool the load.
  [[nodiscard]] VolumetricFlow min_flow_for_target(double utilization, double target_c,
                                                   VolumetricFlow lo, VolumetricFlow hi);

  [[nodiscard]] ThermalModel3D& model() { return model_; }
  [[nodiscard]] const FlowDelivery* delivery() const { return delivery_ ? &*delivery_ : nullptr; }
  [[nodiscard]] const std::vector<BlockSite>& core_sites() const { return cores_; }
  [[nodiscard]] std::size_t setting_count() const;
  [[nodiscard]] const PowerModel& power_model() const { return power_; }

  /// Apply the uniform-utilization power assignment to the model, with
  /// leakage evaluated at the given block-temperature guess source (current
  /// model temperatures).
  void apply_uniform_power(double utilization);

 private:
  [[nodiscard]] double solve_with_leakage_fixed_point(double utilization);

  ThermalModel3D model_;
  PowerModel power_;
  std::optional<FlowDelivery> delivery_;
  std::vector<BlockSite> cores_;
};

}  // namespace liquid3d
