#include "control/characterize.hpp"

#include <cmath>

#include "common/error.hpp"
#include "coolant/microchannel.hpp"

namespace liquid3d {

CharacterizationHarness::CharacterizationHarness(const Stack3D& stack,
                                                 ThermalModelParams thermal_params,
                                                 PowerModelParams power_params,
                                                 const PumpModel& pump,
                                                 FlowDeliveryMode delivery_mode)
    : model_(stack, thermal_params),
      power_(power_params),
      cores_(enumerate_sites(stack, BlockType::kCore)) {
  LIQUID3D_REQUIRE(stack.has_cavities(),
                   "pump-based characterization requires a liquid stack");
  const MicrochannelModel channels(stack.cavity(), thermal_params.coolant,
                                   thermal_params.channel_params);
  delivery_.emplace(pump, delivery_mode, channels, stack.width(), stack.cavity_count());
}

CharacterizationHarness::CharacterizationHarness(const Stack3D& stack,
                                                 ThermalModelParams thermal_params,
                                                 PowerModelParams power_params)
    : model_(stack, thermal_params),
      power_(power_params),
      cores_(enumerate_sites(stack, BlockType::kCore)) {
  LIQUID3D_REQUIRE(!stack.has_cavities(), "this constructor is for air stacks");
}

std::size_t CharacterizationHarness::setting_count() const {
  return delivery_ ? delivery_->setting_count() : 1;
}

void CharacterizationHarness::apply_uniform_power(double utilization) {
  LIQUID3D_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
                   "utilization must be a fraction");
  // Characterize against the worst-case workload composition (maximum
  // switching activity and memory intensity of the Table II set): the LUT
  // must guarantee the target for every workload, at the cost of slight
  // over-cooling for gentler ones.
  constexpr double kWorstCaseActivity = 1.08;
  constexpr double kWorstCaseMemIntensity = 1.0;
  const Stack3D& stack = model_.stack();
  const double active_frac = utilization;  // balanced load: all cores share it
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    const Floorplan& fp = stack.layer(l).floorplan;
    std::vector<double> watts(fp.block_count(), 0.0);
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      const Block& blk = fp.block(b);
      const double t_blk = model_.block_mean_temperature(l, b);
      switch (blk.type) {
        case BlockType::kCore:
          watts[b] = power_.core_power(utilization > 0.0 ? CoreState::kActive
                                                         : CoreState::kIdle,
                                       utilization, kWorstCaseActivity, t_blk);
          break;
        case BlockType::kL2Cache:
          watts[b] = power_.l2_power(t_blk);
          break;
        case BlockType::kCrossbar:
          watts[b] = power_.crossbar_power(active_frac, kWorstCaseMemIntensity, t_blk);
          break;
        case BlockType::kMisc:
          watts[b] = power_.misc_power(blk.rect.area(), t_blk);
          break;
      }
    }
    model_.set_block_power(l, watts);
  }
}

double CharacterizationHarness::solve_with_leakage_fixed_point(double utilization) {
  // The leakage term depends on temperature, which depends on power: iterate
  // power assignment and steady solve until T_max settles.  At the lowest
  // flow settings the leakage-temperature loop gain approaches (and can
  // exceed) 1, so the iteration budget must be generous; a genuinely
  // diverging iterate is physical thermal runaway and is reported as the
  // (large) last value, which the LUT correctly treats as "needs more flow".
  double tmax_prev = model_.max_temperature();
  for (int iter = 0; iter < 80; ++iter) {
    apply_uniform_power(utilization);
    model_.solve_steady_state();
    const double tmax = model_.max_temperature();
    if (std::abs(tmax - tmax_prev) < 0.05) return tmax;
    if (tmax > 400.0) return tmax;  // runaway: no point iterating further
    tmax_prev = tmax;
  }
  return tmax_prev;
}

double CharacterizationHarness::steady_tmax(double utilization, std::size_t setting) {
  if (delivery_) {
    model_.set_cavity_flow(delivery_->per_cavity(setting));
  } else {
    LIQUID3D_REQUIRE(setting == 0, "air stacks have a single (no-pump) setting");
  }
  return solve_with_leakage_fixed_point(utilization);
}

double CharacterizationHarness::steady_tmax_at_flow(double utilization,
                                                    VolumetricFlow per_cavity) {
  model_.set_cavity_flow(per_cavity);
  return solve_with_leakage_fixed_point(utilization);
}

std::vector<double> CharacterizationHarness::steady_core_temps(double utilization,
                                                               std::size_t setting) {
  (void)steady_tmax(utilization, setting);
  std::vector<double> temps;
  temps.reserve(cores_.size());
  for (const BlockSite& site : cores_) {
    temps.push_back(model_.block_temperature(site.layer, site.block));
  }
  return temps;
}

VolumetricFlow CharacterizationHarness::min_flow_for_target(double utilization,
                                                            double target_c,
                                                            VolumetricFlow lo,
                                                            VolumetricFlow hi) {
  LIQUID3D_REQUIRE(lo < hi, "bisection bounds must be ordered");
  if (steady_tmax_at_flow(utilization, hi) > target_c) return hi;
  if (steady_tmax_at_flow(utilization, lo) <= target_c) return lo;
  VolumetricFlow a = lo;
  VolumetricFlow b = hi;
  for (int iter = 0; iter < 24; ++iter) {
    const VolumetricFlow mid = (a + b) / 2.0;
    if (steady_tmax_at_flow(utilization, mid) <= target_c) {
      b = mid;
    } else {
      a = mid;
    }
    if ((b - a).ml_per_min() < 0.05) break;
  }
  return b;
}

}  // namespace liquid3d
