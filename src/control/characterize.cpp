#include "control/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "coolant/microchannel.hpp"

namespace liquid3d {

CharacterizationHarness::CharacterizationHarness(const Stack3D& stack,
                                                 ThermalModelParams thermal_params,
                                                 PowerModelParams power_params,
                                                 const PumpModel& pump,
                                                 FlowDeliveryMode delivery_mode)
    : model_(stack, thermal_params),
      power_(power_params),
      cores_(enumerate_sites(stack, BlockType::kCore)) {
  LIQUID3D_REQUIRE(stack.has_cavities(),
                   "pump-based characterization requires a liquid stack");
  const MicrochannelModel channels(stack.cavity(), thermal_params.coolant,
                                   thermal_params.channel_params);
  delivery_.emplace(pump, delivery_mode, channels, stack.width(), stack.cavity_count());
}

CharacterizationHarness::CharacterizationHarness(const Stack3D& stack,
                                                 ThermalModelParams thermal_params,
                                                 PowerModelParams power_params)
    : model_(stack, thermal_params),
      power_(power_params),
      cores_(enumerate_sites(stack, BlockType::kCore)) {
  LIQUID3D_REQUIRE(!stack.has_cavities(), "this constructor is for air stacks");
}

std::size_t CharacterizationHarness::setting_count() const {
  return delivery_ ? delivery_->setting_count() : 1;
}

void CharacterizationHarness::apply_uniform_power(double utilization) {
  LIQUID3D_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
                   "utilization must be a fraction");
  // Characterize against the worst-case workload composition (maximum
  // switching activity and memory intensity of the Table II set): the LUT
  // must guarantee the target for every workload, at the cost of slight
  // over-cooling for gentler ones.
  constexpr double kWorstCaseActivity = 1.08;
  constexpr double kWorstCaseMemIntensity = 1.0;
  const Stack3D& stack = model_.stack();
  const double active_frac = utilization;  // balanced load: all cores share it
  for (std::size_t l = 0; l < stack.layer_count(); ++l) {
    const Floorplan& fp = stack.layer(l).floorplan;
    std::vector<double> watts(fp.block_count(), 0.0);
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      const Block& blk = fp.block(b);
      const double t_blk = model_.block_mean_temperature(l, b);
      switch (blk.type) {
        case BlockType::kCore:
          watts[b] = power_.core_power(utilization > 0.0 ? CoreState::kActive
                                                         : CoreState::kIdle,
                                       utilization, kWorstCaseActivity, t_blk);
          break;
        case BlockType::kL2Cache:
          watts[b] = power_.l2_power(t_blk);
          break;
        case BlockType::kCrossbar:
          watts[b] = power_.crossbar_power(active_frac, kWorstCaseMemIntensity, t_blk);
          break;
        case BlockType::kMisc:
          watts[b] = power_.misc_power(blk.rect.area(), t_blk);
          break;
      }
    }
    model_.set_block_power(l, watts);
  }
}

double CharacterizationHarness::solve_with_leakage_fixed_point(double utilization) {
  // The leakage term depends on temperature, which depends on power.  The
  // fused path re-applies the power assignment before every pseudo-transient
  // step, so one continuation run converges power and temperature together —
  // the seed wrapped the whole steady solve in an outer fixed point and paid
  // for 3-4 complete pseudo-transient runs per operating point.  A genuinely
  // diverging iterate is physical thermal runaway and is reported as the
  // (large) last value, which the LUT correctly treats as "needs more flow".
  if (fused_leakage_) {
    apply_uniform_power(utilization);
    // Abort on runaway (>400 C) — but never before the first solve: the
    // warm-start seed may legitimately be a hot state that this operating
    // point cools down from.
    std::size_t steps = 0;
    model_.solve_steady_state([&]() {
      apply_uniform_power(utilization);
      return steps++ == 0 || model_.max_temperature() <= 400.0;
    });
    return model_.max_temperature();
  }
  double tmax_prev = model_.max_temperature();
  for (int iter = 0; iter < 80; ++iter) {
    apply_uniform_power(utilization);
    model_.solve_steady_state();
    const double tmax = model_.max_temperature();
    if (std::abs(tmax - tmax_prev) < 0.05) return tmax;
    if (tmax > 400.0) return tmax;  // runaway: no point iterating further
    tmax_prev = tmax;
  }
  return tmax_prev;
}

namespace {
/// Distance between operating points: utilization spans [0,1]; the flow
/// coordinate is scaled so the full pump range weighs about as much as the
/// full utilization range.
double operating_point_distance(double u_a, double f_a, double u_b, double f_b) {
  constexpr double kFlowScale = 50.0;  // ml/min — typical per-cavity range
  return std::abs(u_a - u_b) + std::abs(f_a - f_b) / kFlowScale;
}
}  // namespace

void CharacterizationHarness::seed_from_nearest(double utilization,
                                                double flow_ml_per_min) {
  const WarmPoint* best = nullptr;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const WarmPoint& p : warm_points_) {
    const double d = operating_point_distance(utilization, flow_ml_per_min,
                                              p.utilization, p.flow_ml_per_min);
    if (d < best_dist) {
      best_dist = d;
      best = &p;
    }
  }
  if (best != nullptr) model_.restore_state(best->state);
}

void CharacterizationHarness::remember_point(double utilization,
                                             double flow_ml_per_min) {
  constexpr std::size_t kMaxPoints = 48;
  // Replace the closest existing point when full (or when re-solving the
  // same operating point) so the cache tracks the sweep frontier.
  WarmPoint* victim = nullptr;
  double victim_dist = std::numeric_limits<double>::infinity();
  for (WarmPoint& p : warm_points_) {
    const double d = operating_point_distance(utilization, flow_ml_per_min,
                                              p.utilization, p.flow_ml_per_min);
    if (d < victim_dist) {
      victim_dist = d;
      victim = &p;
    }
  }
  if (warm_points_.size() < kMaxPoints && victim_dist > 1e-9) {
    warm_points_.emplace_back();
    victim = &warm_points_.back();
  }
  LIQUID3D_ASSERT(victim != nullptr, "warm point bookkeeping failed");
  victim->utilization = utilization;
  victim->flow_ml_per_min = flow_ml_per_min;
  model_.save_state(victim->state);
}

double CharacterizationHarness::solve_at_operating_point(double utilization,
                                                         double flow_ml_per_min) {
  if (warm_start_) seed_from_nearest(utilization, flow_ml_per_min);
  const double tmax = solve_with_leakage_fixed_point(utilization);
  // Never cache a runaway state: seeding a neighbouring (convergent) point
  // from a >400 C iterate would poison its solve.
  if (warm_start_ && tmax <= 400.0) remember_point(utilization, flow_ml_per_min);
  return tmax;
}

double CharacterizationHarness::steady_tmax(double utilization, std::size_t setting) {
  double flow_key = 0.0;
  if (delivery_) {
    const VolumetricFlow flow = delivery_->per_cavity(setting);
    model_.set_cavity_flow(flow);
    flow_key = flow.ml_per_min();
  } else {
    LIQUID3D_REQUIRE(setting == 0, "air stacks have a single (no-pump) setting");
  }
  return solve_at_operating_point(utilization, flow_key);
}

double CharacterizationHarness::steady_tmax_at_flow(double utilization,
                                                    VolumetricFlow per_cavity) {
  model_.set_cavity_flow(per_cavity);
  return solve_at_operating_point(utilization, per_cavity.ml_per_min());
}

double CharacterizationHarness::steady_tmax_at_flows(
    double utilization, const std::vector<VolumetricFlow>& flows) {
  LIQUID3D_REQUIRE(!flows.empty(), "flow vector must not be empty");
  model_.set_cavity_flow(flows);
  double mean = 0.0;
  for (const VolumetricFlow& f : flows) mean += f.ml_per_min();
  mean /= static_cast<double>(flows.size());
  return solve_at_operating_point(utilization, mean);
}

std::vector<double> CharacterizationHarness::steady_core_temps(double utilization,
                                                               std::size_t setting) {
  (void)steady_tmax(utilization, setting);
  std::vector<double> temps;
  temps.reserve(cores_.size());
  for (const BlockSite& site : cores_) {
    temps.push_back(model_.block_temperature(site.layer, site.block));
  }
  return temps;
}

VolumetricFlow CharacterizationHarness::min_flow_for_target(double utilization,
                                                            double target_c,
                                                            VolumetricFlow lo,
                                                            VolumetricFlow hi) {
  LIQUID3D_REQUIRE(lo < hi, "bisection bounds must be ordered");
  if (steady_tmax_at_flow(utilization, hi) > target_c) return hi;
  if (steady_tmax_at_flow(utilization, lo) <= target_c) return lo;
  VolumetricFlow a = lo;
  VolumetricFlow b = hi;
  for (int iter = 0; iter < 24; ++iter) {
    const VolumetricFlow mid = (a + b) / 2.0;
    if (steady_tmax_at_flow(utilization, mid) <= target_c) {
      b = mid;
    } else {
      a = mid;
    }
    if ((b - a).ml_per_min() < 0.05) break;
  }
  return b;
}

std::vector<std::vector<double>> sample_tmax_grid(const HarnessFactory& make_harness,
                                                  std::size_t setting_count,
                                                  std::size_t utilization_points,
                                                  std::size_t threads) {
  LIQUID3D_REQUIRE(setting_count >= 1, "need at least one pump setting");
  // >= 3 matches FlowLut::from_samples — fail before the sweep, not after.
  LIQUID3D_REQUIRE(utilization_points >= 3, "utilization sweep too coarse");
  std::vector<double> us(utilization_points);
  for (std::size_t i = 0; i < utilization_points; ++i) {
    us[i] = static_cast<double>(i) / static_cast<double>(utilization_points - 1);
  }
  std::vector<std::vector<double>> grid(setting_count,
                                        std::vector<double>(utilization_points));

  if (threads == 0) threads = ThreadPool::default_concurrency();
  const std::size_t workers = std::min(threads, setting_count);

  // Worker h owns one harness and sweeps settings h, h+W, h+2W, ...; within
  // a worker the sweep is setting-major with ascending utilization, so each
  // solve warm-starts from a neighbouring operating point.
  auto sweep = [&](std::size_t h) {
    const std::unique_ptr<CharacterizationHarness> harness = make_harness();
    for (std::size_t s = h; s < setting_count; s += workers) {
      for (std::size_t i = 0; i < utilization_points; ++i) {
        grid[s][i] = harness->steady_tmax(us[i], s);
      }
    }
  };

  if (workers <= 1) {
    sweep(0);
    return grid;
  }
  ThreadPool pool(workers);
  pool.parallel_for(0, workers, sweep);
  return grid;
}

FlowLut characterize_flow_lut(const HarnessFactory& make_harness,
                              double target_temperature,
                              std::size_t utilization_points, std::size_t threads) {
  const std::unique_ptr<CharacterizationHarness> probe = make_harness();
  const std::size_t settings = probe->setting_count();
  return FlowLut::from_samples(
      sample_tmax_grid(make_harness, settings, utilization_points, threads),
      target_temperature);
}

CavitySkewGrid sample_cavity_skew_grid(const HarnessFactory& make_harness,
                                       const ValveNetwork& network,
                                       std::size_t setting, double utilization,
                                       std::size_t opening_points,
                                       std::size_t threads) {
  LIQUID3D_REQUIRE(opening_points >= 2, "opening sweep too coarse");
  const std::size_t cavities = network.cavity_count();

  CavitySkewGrid grid;
  grid.openings.resize(opening_points);
  const double lo = network.params().min_opening;
  for (std::size_t i = 0; i < opening_points; ++i) {
    grid.openings[i] =
        lo + (1.0 - lo) * static_cast<double>(i) /
                 static_cast<double>(opening_points - 1);
  }
  grid.tmax.assign(cavities, std::vector<double>(opening_points));

  if (threads == 0) threads = ThreadPool::default_concurrency();
  const std::size_t workers = std::min(threads, cavities);

  // Worker h sweeps cavities h, h+W, ...; within a cavity the openings are
  // swept ascending so each solve warm-starts near the previous one, ending
  // at the fully-open (uniform) point shared by every cavity row.
  auto sweep = [&](std::size_t h) {
    const std::unique_ptr<CharacterizationHarness> harness = make_harness();
    std::vector<double> openings(cavities, 1.0);
    for (std::size_t k = h; k < cavities; k += workers) {
      for (std::size_t i = 0; i < opening_points; ++i) {
        openings[k] = grid.openings[i];
        grid.tmax[k][i] = harness->steady_tmax_at_flows(
            utilization, network.flows(setting, openings));
      }
      openings[k] = 1.0;
    }
  };

  if (workers <= 1) {
    sweep(0);
    return grid;
  }
  ThreadPool pool(workers);
  pool.parallel_for(0, workers, sweep);
  return grid;
}

}  // namespace liquid3d
