// flow_lut.hpp — the temperature-indexed flow-rate look-up table (Sec. IV).
//
// "Based on this analysis ... we set up a look-up table indexed by
//  temperature values, and each line holds a flow rate value."
//
// The mapping from an observed maximum temperature to the flow setting that
// cools the system below the target depends on the flow the system is
// *currently* receiving (the same heat load reads hotter under less
// coolant), so the table is characterized per current setting: for each
// current setting s and each candidate setting k it stores the observed-T
// threshold above which at least setting k is required.  Fig. 5 is the
// s = lowest-setting row of this table.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace liquid3d {

class FlowLut {
 public:
  /// thresholds[s][k-1] = lowest observed T_max (measured while running at
  /// setting s) that requires at least setting k; k in 1..setting_count-1.
  /// Rows must be non-decreasing.
  FlowLut(std::vector<std::vector<double>> thresholds, double target_temperature);

  /// Minimum setting that cools the forecast temperature below the target,
  /// given the setting the observation was made under.
  [[nodiscard]] std::size_t required_setting(std::size_t current_setting,
                                             double observed_tmax) const;

  /// The observed-T boundary at which `setting` starts being required (the
  /// "boundary temperature between two flow rate settings" the paper's
  /// hysteresis is measured against).  Returns -infinity for setting 0.
  [[nodiscard]] double boundary(std::size_t current_setting, std::size_t setting) const;

  [[nodiscard]] std::size_t setting_count() const { return thresholds_.size(); }
  [[nodiscard]] double target_temperature() const { return target_; }

  /// Characterize a system.  tmax(u, s) must return the steady maximum
  /// temperature under uniform utilization u at setting s (see
  /// CharacterizationHarness).  `utilization_points` controls the sweep
  /// resolution.  Samples serially; `characterize_flow_lut` (characterize.hpp)
  /// is the parallel warm-started driver.
  [[nodiscard]] static FlowLut characterize(
      const std::function<double(double, std::size_t)>& tmax, std::size_t setting_count,
      double target_temperature, std::size_t utilization_points = 41);

  /// Build the table from a pre-sampled grid tmax_grid[setting][u_index]
  /// (utilizations uniform ascending on [0, 1]).  Splitting sampling from
  /// construction lets callers fan the solves out over a thread pool.
  [[nodiscard]] static FlowLut from_samples(
      const std::vector<std::vector<double>>& tmax_grid, double target_temperature);

 private:
  std::vector<std::vector<double>> thresholds_;
  double target_;
};

}  // namespace liquid3d
