// flow_controller.hpp — the proactive, hysteretic flow-rate controller.
//
// Input: the forecast maximum temperature (ARMA, 500 ms ahead).  Output: the
// pump setting for the next interval, looked up in the FlowLut.  Upward
// moves are immediate; downward moves are held until the forecast is at
// least `hysteresis` (2 °C in the paper) below the boundary temperature of
// the current setting, which suppresses rapid oscillation between adjacent
// settings — and descend one setting per decision, so every intermediate
// boundary is re-validated on the way down (the paper's gradual stepping).
#pragma once

#include <cstddef>

#include "control/flow_lut.hpp"

namespace liquid3d {

struct FlowControllerParams {
  double hysteresis = 2.0;  ///< °C (paper)
  /// When true, scale-up decisions are also immediate on the *measured*
  /// temperature exceeding the target (belt and braces on top of the
  /// forecast; the paper's guarantee of staying below the target).
  bool guard_on_measured = true;
};

class FlowRateController {
 public:
  FlowRateController(FlowLut lut, FlowControllerParams params = {});

  /// Decide the setting to command.
  ///   forecast_tmax — predicted maximum temperature (°C);
  ///   measured_tmax — latest sensor reading (°C);
  ///   current       — the pump's current (effective) setting.
  [[nodiscard]] std::size_t decide(double forecast_tmax, double measured_tmax,
                                   std::size_t current) const;

  [[nodiscard]] const FlowLut& lut() const { return lut_; }
  [[nodiscard]] const FlowControllerParams& params() const { return params_; }

 private:
  FlowLut lut_;
  FlowControllerParams params_;
};

}  // namespace liquid3d
