// thermal_manager.hpp — the complete runtime technique of Fig. 4.
//
//   3D system -> monitor temperature -> forecast maximum temperature ->
//   (controller: flow-rate adjustment)  +  (scheduler: weighted load
//   balancing via the thermal weight table).
//
// This class owns the forecasting pipeline, the LUT controller, and the
// pump actuator; the Simulator calls update() once per sampling interval
// with the measured maximum temperature and reads back the thermal weights
// to hand to the TALB scheduler.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "control/flow_controller.hpp"
#include "control/talb_weights.hpp"
#include "coolant/pump.hpp"
#include "forecast/adaptive_predictor.hpp"

namespace liquid3d {

struct ThermalManagerConfig {
  /// Use the LUT controller (false = pin the pump at the maximum setting,
  /// the paper's "(Max)" configurations).
  bool variable_flow = true;
  /// Ablation: react to the measured temperature instead of the forecast
  /// (what the paper argues against, given the ~275 ms pump latency).
  bool reactive = false;
  FlowControllerParams controller{};
  AdaptivePredictorConfig predictor{};
  /// The LUT is characterized against (target - margin): a steady-state
  /// guard band absorbing forecast error and the pump transition latency,
  /// so the *measured* temperature honours the target.
  double lut_margin_c = 2.0;
};

class ThermalManager {
 public:
  ThermalManager(FlowLut lut, TalbWeightTable weights, const PumpModel& pump,
                 ThermalManagerConfig cfg);

  /// One sampling interval: completes pending pump transitions, feeds the
  /// predictor, and commands the controller's decision.  Returns the pump
  /// setting commanded for the next interval.
  std::size_t update(SimTime now, double measured_tmax);

  /// TALB weight vector for the current maximum temperature.
  [[nodiscard]] const std::vector<double>& thermal_weights(double tmax) const {
    return weights_.lookup(tmax);
  }

  [[nodiscard]] const PumpActuator& actuator() const { return actuator_; }
  [[nodiscard]] PumpActuator& actuator() { return actuator_; }
  [[nodiscard]] double last_forecast() const { return last_forecast_; }
  [[nodiscard]] const AdaptivePredictor& predictor() const { return predictor_; }
  [[nodiscard]] const FlowRateController& controller() const { return controller_; }
  [[nodiscard]] const ThermalManagerConfig& config() const { return cfg_; }

 private:
  ThermalManagerConfig cfg_;
  FlowRateController controller_;
  TalbWeightTable weights_;
  AdaptivePredictor predictor_;
  PumpActuator actuator_;
  std::size_t max_setting_;
  double last_forecast_ = 0.0;
};

}  // namespace liquid3d
