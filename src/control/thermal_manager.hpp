// thermal_manager.hpp — the complete runtime technique of Fig. 4.
//
//   3D system -> monitor temperature -> forecast maximum temperature ->
//   (controller: flow-rate adjustment)  +  (scheduler: weighted load
//   balancing via the thermal weight table).
//
// This class owns the forecasting pipeline, the LUT controller, and the
// pump actuator; the Simulator calls update() once per sampling interval
// with the measured maximum temperature and reads back the thermal weights
// to hand to the TALB scheduler.  When a ValveNetwork is attached, update()
// additionally turns per-cavity temperature observations into valve-opening
// commands (CavityFlowController), steering the shared pump's flow toward
// the hottest cavity at conserved total delivered flow.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "control/cavity_flow_controller.hpp"
#include "control/flow_controller.hpp"
#include "control/talb_weights.hpp"
#include "coolant/pump.hpp"
#include "coolant/valve_network.hpp"
#include "forecast/adaptive_predictor.hpp"

namespace liquid3d {

struct ThermalManagerConfig {
  /// Use the LUT controller (false = pin the pump at the maximum setting,
  /// the paper's "(Max)" configurations).
  bool variable_flow = true;
  /// Ablation: react to the measured temperature instead of the forecast
  /// (what the paper argues against, given the ~275 ms pump latency).
  bool reactive = false;
  FlowControllerParams controller{};
  AdaptivePredictorConfig predictor{};
  /// The LUT is characterized against (target - margin): a steady-state
  /// guard band absorbing forecast error and the pump transition latency,
  /// so the *measured* temperature honours the target.
  double lut_margin_c = 2.0;
  /// Per-cavity delivery: route the pump through a valve network and steer
  /// flow toward the hottest cavity.  Valve decisions run in every cooling
  /// mode (including fixed-max pump), since redistribution is orthogonal to
  /// the pump setting.
  bool valve_network = false;
  ValveNetworkParams valves{};
  CavityFlowControllerParams cavity_controller{};
};

class ThermalManager {
 public:
  /// `valves`: the delivery manifold for per-cavity control; nullopt keeps
  /// the paper's uniform delivery (the config's valve fields are ignored).
  ThermalManager(FlowLut lut, TalbWeightTable weights, const PumpModel& pump,
                 ThermalManagerConfig cfg, std::optional<ValveNetwork> valves = {});

  /// One sampling interval: completes pending pump/valve transitions, feeds
  /// the predictor, and commands the controller's decisions.  `cavity_tmax`
  /// carries the per-cavity maximum temperatures when a valve network is
  /// attached; an empty vector issues no valve command, leaving the last
  /// commanded openings in place (e.g. across a sensor dropout).  Returns
  /// the pump setting commanded for the next interval.
  std::size_t update(SimTime now, double measured_tmax,
                     const std::vector<double>& cavity_tmax = {});

  /// TALB weight vector for the current maximum temperature.
  [[nodiscard]] const std::vector<double>& thermal_weights(double tmax) const {
    return weights_.lookup(tmax);
  }

  [[nodiscard]] const PumpActuator& actuator() const { return actuator_; }
  [[nodiscard]] PumpActuator& actuator() { return actuator_; }
  [[nodiscard]] bool has_valve_network() const { return valves_.has_value(); }
  /// Valve actuator (null when no valve network is attached).
  [[nodiscard]] const ValveNetworkActuator* valves() const {
    return valves_ ? &*valves_ : nullptr;
  }
  /// Per-cavity flows at the effective pump setting and valve openings.
  /// Requires an attached valve network.
  [[nodiscard]] std::vector<VolumetricFlow> cavity_flows() const;
  /// Allocation-free variant for per-tick callers: writes into `out`.
  void cavity_flows_into(std::vector<VolumetricFlow>& out) const;
  [[nodiscard]] double last_forecast() const { return last_forecast_; }
  [[nodiscard]] const AdaptivePredictor& predictor() const { return predictor_; }
  [[nodiscard]] const FlowRateController& controller() const { return controller_; }
  [[nodiscard]] const ThermalManagerConfig& config() const { return cfg_; }

 private:
  ThermalManagerConfig cfg_;
  FlowRateController controller_;
  TalbWeightTable weights_;
  AdaptivePredictor predictor_;
  PumpActuator actuator_;
  std::optional<CavityFlowController> cavity_controller_;
  std::optional<ValveNetworkActuator> valves_;
  std::size_t max_setting_;
  double last_forecast_ = 0.0;
  // Per-tick scratch: the valve command path must not allocate.
  std::vector<double> opening_scratch_;
};

}  // namespace liquid3d
