#include "control/thermal_manager.hpp"

namespace liquid3d {

ThermalManager::ThermalManager(FlowLut lut, TalbWeightTable weights,
                               const PumpModel& pump, ThermalManagerConfig cfg)
    : cfg_(cfg),
      controller_(std::move(lut), cfg.controller),
      weights_(std::move(weights)),
      predictor_(cfg.predictor),
      // Start at the maximum setting: the safe state until the predictor
      // has seen enough history.
      actuator_(pump, pump.max_setting()),
      max_setting_(pump.max_setting()) {}

std::size_t ThermalManager::update(SimTime now, double measured_tmax) {
  actuator_.tick(now);

  if (!cfg_.variable_flow) {
    last_forecast_ = measured_tmax;
    actuator_.command(max_setting_, now);
    return max_setting_;
  }

  predictor_.observe(measured_tmax);
  last_forecast_ = cfg_.reactive ? measured_tmax : predictor_.forecast();

  // Until the ARMA model is ready, stay at maximum flow (safe default).
  if (!cfg_.reactive && !predictor_.ready()) {
    actuator_.command(max_setting_, now);
    return max_setting_;
  }

  const std::size_t decision =
      controller_.decide(last_forecast_, measured_tmax, actuator_.effective_setting());
  actuator_.command(decision, now);
  return decision;
}

}  // namespace liquid3d
