#include "control/thermal_manager.hpp"

#include "common/error.hpp"

namespace liquid3d {

ThermalManager::ThermalManager(FlowLut lut, TalbWeightTable weights,
                               const PumpModel& pump, ThermalManagerConfig cfg,
                               std::optional<ValveNetwork> valves)
    : cfg_(cfg),
      controller_(std::move(lut), cfg.controller),
      weights_(std::move(weights)),
      predictor_(cfg.predictor),
      // Start at the maximum setting: the safe state until the predictor
      // has seen enough history.
      actuator_(pump, pump.max_setting()),
      max_setting_(pump.max_setting()) {
  if (valves) {
    CavityFlowControllerParams cp = cfg_.cavity_controller;
    // A single opening floor: the controller must not command below what
    // the lossy valves can physically reach.
    cp.min_opening = valves->params().min_opening;
    cavity_controller_.emplace(valves->cavity_count(), cp);
    valves_.emplace(std::move(*valves));
  }
}

std::vector<VolumetricFlow> ThermalManager::cavity_flows() const {
  LIQUID3D_REQUIRE(valves_.has_value(), "no valve network attached");
  return valves_->effective_flows(actuator_.effective_setting());
}

void ThermalManager::cavity_flows_into(std::vector<VolumetricFlow>& out) const {
  LIQUID3D_REQUIRE(valves_.has_value(), "no valve network attached");
  valves_->effective_flows_into(actuator_.effective_setting(), out);
}

std::size_t ThermalManager::update(SimTime now, double measured_tmax,
                                   const std::vector<double>& cavity_tmax) {
  actuator_.tick(now);
  if (valves_) valves_->tick(now);

  std::size_t decision;
  if (!cfg_.variable_flow) {
    last_forecast_ = measured_tmax;
    decision = max_setting_;
  } else {
    predictor_.observe(measured_tmax);
    last_forecast_ = cfg_.reactive ? measured_tmax : predictor_.forecast();
    if (!cfg_.reactive && !predictor_.ready()) {
      // Until the ARMA model is ready, stay at maximum flow (safe default).
      decision = max_setting_;
    } else {
      decision = controller_.decide(last_forecast_, measured_tmax,
                                    actuator_.effective_setting());
    }
  }
  actuator_.command(decision, now);

  // Valve redistribution is orthogonal to the pump setting: it runs in
  // fixed-max mode too (same total flow, steered toward the hot cavity).
  if (valves_ && !cavity_tmax.empty()) {
    cavity_controller_->valve_openings_into(cavity_tmax, opening_scratch_);
    valves_->command(opening_scratch_, now);
  }
  return decision;
}

}  // namespace liquid3d
