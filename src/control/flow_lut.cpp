#include "control/flow_lut.hpp"

#include <limits>

#include "common/error.hpp"

namespace liquid3d {

FlowLut::FlowLut(std::vector<std::vector<double>> thresholds, double target_temperature)
    : thresholds_(std::move(thresholds)), target_(target_temperature) {
  LIQUID3D_REQUIRE(!thresholds_.empty(), "LUT needs at least one setting row");
  for (const auto& row : thresholds_) {
    LIQUID3D_REQUIRE(row.size() == thresholds_.size() - 1,
                     "LUT row arity must be setting_count - 1");
    for (std::size_t k = 1; k < row.size(); ++k) {
      LIQUID3D_REQUIRE(row[k] >= row[k - 1], "LUT thresholds must be non-decreasing");
    }
  }
}

std::size_t FlowLut::required_setting(std::size_t current_setting,
                                      double observed_tmax) const {
  LIQUID3D_REQUIRE(current_setting < thresholds_.size(), "invalid current setting");
  const auto& row = thresholds_[current_setting];
  std::size_t required = 0;
  for (std::size_t k = 0; k < row.size(); ++k) {
    if (observed_tmax >= row[k]) required = k + 1;
  }
  return required;
}

double FlowLut::boundary(std::size_t current_setting, std::size_t setting) const {
  LIQUID3D_REQUIRE(current_setting < thresholds_.size(), "invalid current setting");
  if (setting == 0) return -std::numeric_limits<double>::infinity();
  LIQUID3D_REQUIRE(setting < thresholds_.size(), "invalid setting");
  return thresholds_[current_setting][setting - 1];
}

FlowLut FlowLut::characterize(const std::function<double(double, std::size_t)>& tmax,
                              std::size_t setting_count, double target_temperature,
                              std::size_t utilization_points) {
  LIQUID3D_REQUIRE(setting_count >= 1, "need at least one pump setting");
  LIQUID3D_REQUIRE(utilization_points >= 3, "utilization sweep too coarse");

  // Sample T_max(u, s) on the utilization grid.
  std::vector<std::vector<double>> t(setting_count,
                                     std::vector<double>(utilization_points));
  std::vector<double> us(utilization_points);
  for (std::size_t i = 0; i < utilization_points; ++i) {
    us[i] = static_cast<double>(i) / static_cast<double>(utilization_points - 1);
  }
  // Setting-major order: each solve continues from a nearby operating point,
  // which keeps the leakage-temperature fixed point well-conditioned.
  for (std::size_t s = 0; s < setting_count; ++s) {
    for (std::size_t i = 0; i < utilization_points; ++i) {
      t[s][i] = tmax(us[i], s);
    }
  }
  return from_samples(t, target_temperature);
}

FlowLut FlowLut::from_samples(const std::vector<std::vector<double>>& t,
                              double target_temperature) {
  const std::size_t setting_count = t.size();
  LIQUID3D_REQUIRE(setting_count >= 1, "need at least one pump setting");
  const std::size_t utilization_points = t.front().size();
  LIQUID3D_REQUIRE(utilization_points >= 3, "utilization sweep too coarse");
  for (const auto& row : t) {
    LIQUID3D_REQUIRE(row.size() == utilization_points, "ragged sample grid");
  }

  // Required setting per utilization point: the smallest s whose steady
  // T_max meets the target (the highest setting if none does).
  std::vector<std::size_t> required(utilization_points);
  for (std::size_t i = 0; i < utilization_points; ++i) {
    std::size_t req = setting_count - 1;
    for (std::size_t s = 0; s < setting_count; ++s) {
      if (t[s][i] <= target_temperature) {
        req = s;
        break;
      }
    }
    required[i] = req;
  }

  // Thresholds: for each observation setting s_cur and each candidate k,
  // the observed T at the first utilization needing >= k.
  std::vector<std::vector<double>> thresholds(
      setting_count, std::vector<double>(setting_count - 1,
                                         std::numeric_limits<double>::infinity()));
  for (std::size_t s_cur = 0; s_cur < setting_count; ++s_cur) {
    for (std::size_t k = 1; k < setting_count; ++k) {
      // Settings below what the zero-load point already requires are never
      // usable: any temperature observed at s_cur while "below" the
      // zero-load steady state is a transient on its way up, so the
      // threshold must be unconditional.
      if (required.front() >= k) {
        thresholds[s_cur][k - 1] = -std::numeric_limits<double>::infinity();
        continue;
      }
      for (std::size_t i = 0; i < utilization_points; ++i) {
        if (required[i] >= k) {
          thresholds[s_cur][k - 1] = t[s_cur][i];
          break;
        }
      }
    }
    // Enforce monotonicity against sweep noise.
    for (std::size_t k = 1; k < setting_count - 1; ++k) {
      if (thresholds[s_cur][k] < thresholds[s_cur][k - 1]) {
        thresholds[s_cur][k] = thresholds[s_cur][k - 1];
      }
    }
  }
  return FlowLut(std::move(thresholds), target_temperature);
}

}  // namespace liquid3d
