#!/usr/bin/env bash
# run_chaos_sweep.sh — fault-tolerance end-to-end smoke: plan a grid into K
# shards, run the fleet under `sweep_worker supervise` with deterministic
# per-cell solver faults injected (LIQUID3D_FAULTS) and one worker SIGKILLed
# from outside mid-run, then merge with --allow-partial and check that
#
#   1. the supervisor restarted the killed worker and the fleet finished,
#   2. the failure manifest names exactly the injected cells, each with the
#      full escalation-ladder attempt count,
#   3. every OTHER cell of the merged report is byte-identical to a
#      fault-free single-process run of the same grid.
#
# Usage:
#   scripts/run_chaos_sweep.sh [SWEEP_WORKER_BIN] [SHARDS] [WORKDIR]
#
#   SWEEP_WORKER_BIN  path to the sweep_worker binary (default: build/sweep_worker)
#   SHARDS            worker count (default: 3)
#   WORKDIR           scratch dir (default: mktemp -d, removed on success,
#                     kept on failure; a caller-supplied dir is never removed)
#
# Grid knobs (env): SWEEP_DURATION_S (default 2), SWEEP_GRID_ROWS (8),
# SWEEP_GRID_COLS (9), SWEEP_SCENARIOS / SWEEP_WORKLOADS (comma lists,
# default: full paper grid x 2 workloads), SWEEP_STRATEGY (cost).
# CHAOS_FAULT_CELLS (default "1 2") picks the cells whose solves fail.
# CHAOS_KILL_SPEC (default "journal.append:nth=3:kill") SIGKILLs every
# worker at its third journal append — deterministic, unlike racing an
# external kill against sub-second workers — so the supervisor's restart
# and the journal resume path run on every machine, however fast.
set -euo pipefail

BIN="${1:-build/sweep_worker}"
SHARDS="${2:-3}"
if [[ $# -ge 3 ]]; then
    WORKDIR="$3"
    CLEANUP_WORKDIR=0  # caller-owned: never auto-delete
else
    WORKDIR=$(mktemp -d /tmp/liquid3d-chaos.XXXXXX)
    CLEANUP_WORKDIR=1
fi

DURATION_S="${SWEEP_DURATION_S:-2}"
GRID_ROWS="${SWEEP_GRID_ROWS:-8}"
GRID_COLS="${SWEEP_GRID_COLS:-9}"
SCENARIOS="${SWEEP_SCENARIOS:-}"
WORKLOADS="${SWEEP_WORKLOADS:-gzip,Web-med}"
STRATEGY="${SWEEP_STRATEGY:-cost}"
FAULT_CELLS="${CHAOS_FAULT_CELLS:-1 2}"
KILL_SPEC="${CHAOS_KILL_SPEC:-journal.append:nth=3:kill}"

if [[ ! -x "$BIN" ]]; then
    echo "error: sweep_worker binary not found at '$BIN'" >&2
    echo "build it first: cmake --build build --target sweep_worker" >&2
    exit 2
fi

# The FAILED manifest records the default escalation ladder's attempt count
# (as-configured, direct backend, direct + relaxed tolerances).
ATTEMPTS=3

FAULT_SPEC=""
for cell in $FAULT_CELLS; do
    FAULT_SPEC="${FAULT_SPEC:+$FAULT_SPEC;}worker.cell:key=$cell"
done
if [[ -n "$KILL_SPEC" ]]; then
    FAULT_SPEC="$FAULT_SPEC;$KILL_SPEC"
fi

echo "== workdir: $WORKDIR (shards: $SHARDS, faults: $FAULT_SPEC)"

plan_args=(plan --shards "$SHARDS" --out-dir "$WORKDIR" --strategy "$STRATEGY"
           --duration-s "$DURATION_S" --grid-rows "$GRID_ROWS" --grid-cols "$GRID_COLS"
           --workloads "$WORKLOADS")
if [[ -n "$SCENARIOS" ]]; then
    plan_args+=(--scenarios "$SCENARIOS")
fi
"$BIN" "${plan_args[@]}"

# -- Fault-free single-process reference --------------------------------------
env -u LIQUID3D_FAULTS "$BIN" single --plan "$WORKDIR/sweep-plan.csv" \
    --out "$WORKDIR/single.csv"

# -- Supervised fleet with injected faults ------------------------------------
# Every worker inherits LIQUID3D_FAULTS, so whichever shard holds a faulted
# cell fails it deterministically: the worker quarantines the cell, walks the
# escalation ladder, and journals a FAILED record — the worker itself still
# exits 0 (failures are data).  The kill spec SIGKILLs each worker at its
# third append; --batch 1 journals after every cell, so the kill always
# lands between fsync'd records and the restarted worker resumes cleanly.
LIQUID3D_FAULTS="$FAULT_SPEC" "$BIN" supervise --dir "$WORKDIR" \
    --batch 1 --stall-timeout-ms 60000 \
    > "$WORKDIR/supervise.out" 2>&1 &
SUP_PID=$!

# Extra, opportunistic chaos: also SIGKILL one `run` child from outside if
# any is still alive.  The deterministic kill above already guarantees the
# restart path runs, so a miss here (fast machine) is harmless.
sleep 0.2
VICTIM=$(pgrep -f -- "$BIN run --shard" | head -n 1 || true)
if [[ -n "$VICTIM" ]] && kill -KILL "$VICTIM" 2>/dev/null; then
    echo "== externally SIGKILLed worker pid $VICTIM as well"
fi

if ! wait "$SUP_PID"; then
    echo "== FAIL: supervise exited non-zero" >&2
    cat "$WORKDIR/supervise.out" >&2
    exit 1
fi
cat "$WORKDIR/supervise.out"
# Every worker whose shard needs >= 3 journal appends was SIGKILLed once by
# the injected kill spec; the supervisor must therefore report at least one
# restart (spawns >= 2) — on any machine, at any speed.
if [[ -n "$KILL_SPEC" ]] \
    && ! grep -Eq '\(([2-9]|[0-9]{2,}) spawns' "$WORKDIR/supervise.out"; then
    echo "== FAIL: workers were SIGKILLed but none reports a restart" >&2
    exit 1
fi

# -- Degraded merge + failure manifest ----------------------------------------
journals=()
for shard in "$WORKDIR"/sweep-shard-*.csv; do
    suffix="${shard##*-shard}"  # "-NNN.csv", kept verbatim by supervise
    journals+=("$WORKDIR/sweep-journal${suffix}")
done
env -u LIQUID3D_FAULTS "$BIN" merge --plan "$WORKDIR/sweep-plan.csv" \
    --out "$WORKDIR/merged.csv" --allow-partial \
    --manifest "$WORKDIR/manifest.csv" "${journals[@]}"

# -- Check 1: the manifest names exactly the injected cells -------------------
# Field 1 is the cell index, the last field the attempt count (the error
# text sits in between and is RFC-4180 quoted, so it never sheds fields).
got=$(awk -F, 'NR > 1 { print $1 ":" $NF }' "$WORKDIR/manifest.csv" | sort -n)
want=$(for cell in $FAULT_CELLS; do echo "$cell:$ATTEMPTS"; done | sort -n)
if [[ "$got" != "$want" ]]; then
    echo "== FAIL: manifest mismatch (kept: $WORKDIR)" >&2
    echo "   want: $(echo "$want" | tr '\n' ' ')" >&2
    echo "   got:  $(echo "$got" | tr '\n' ' ')" >&2
    exit 1
fi
echo "== manifest: exactly cells [$FAULT_CELLS] failed, $ATTEMPTS attempts each"

# -- Check 2: surviving cells byte-identical to the fault-free reference ------
# Report layout: the header, then one data row per cell in cell order —
# cell i is line i+2.  Drop the faulted cells' rows from both reports (the
# merged one holds placeholders there) and the rest must not differ by a
# single byte.
filter=$(for cell in $FAULT_CELLS; do printf 'NR != %d && ' "$((cell + 2))"; done)
awk "${filter}1" "$WORKDIR/single.csv" > "$WORKDIR/single-survivors.csv"
awk "${filter}1" "$WORKDIR/merged.csv" > "$WORKDIR/merged-survivors.csv"
if ! diff -u "$WORKDIR/single-survivors.csv" "$WORKDIR/merged-survivors.csv"; then
    echo "== FAIL: surviving cells differ from fault-free run (kept: $WORKDIR)" >&2
    exit 1
fi
echo "== OK: all surviving cells byte-identical to the fault-free single run"

if [[ "$CLEANUP_WORKDIR" == 1 ]]; then
    rm -rf "$WORKDIR"
fi
