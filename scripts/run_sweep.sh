#!/usr/bin/env bash
# run_sweep.sh — end-to-end distributed-sweep smoke: plan a grid into K
# shards, run K local sweep_worker processes (killing and resuming one
# mid-run to exercise the checkpoint journal), merge the journals, and diff
# the merged report against a single-process ExperimentSuite::run of the
# same grid.  Exit 0 iff the two reports are byte-identical.
#
# Usage:
#   scripts/run_sweep.sh [SWEEP_WORKER_BIN] [SHARDS] [WORKDIR]
#
#   SWEEP_WORKER_BIN  path to the sweep_worker binary (default: build/sweep_worker)
#   SHARDS            worker count (default: 3)
#   WORKDIR           scratch dir (default: mktemp -d, removed on success,
#                     kept on failure; a caller-supplied dir is never removed)
#
# Grid knobs (env): SWEEP_DURATION_S (default 2), SWEEP_GRID_ROWS (8),
# SWEEP_GRID_COLS (9), SWEEP_SCENARIOS / SWEEP_WORKLOADS (comma lists,
# default: full paper grid x 2 workloads), SWEEP_STRATEGY (cost),
# SWEEP_STACK (stack preset name or stack file, e.g.
# examples/stacks/asym-3die.stack; a file's spec is embedded in the plan's
# #suite metadata, so the workers never read the file themselves).
set -euo pipefail

BIN="${1:-build/sweep_worker}"
SHARDS="${2:-3}"
if [[ $# -ge 3 ]]; then
    WORKDIR="$3"
    CLEANUP_WORKDIR=0  # caller-owned: never auto-delete
else
    WORKDIR=$(mktemp -d /tmp/liquid3d-sweep.XXXXXX)
    CLEANUP_WORKDIR=1
fi

DURATION_S="${SWEEP_DURATION_S:-2}"
GRID_ROWS="${SWEEP_GRID_ROWS:-8}"
GRID_COLS="${SWEEP_GRID_COLS:-9}"
SCENARIOS="${SWEEP_SCENARIOS:-}"
WORKLOADS="${SWEEP_WORKLOADS:-gzip,Web-med}"
STRATEGY="${SWEEP_STRATEGY:-cost}"
STACK="${SWEEP_STACK:-}"

if [[ ! -x "$BIN" ]]; then
    echo "error: sweep_worker binary not found at '$BIN'" >&2
    echo "build it first: cmake --build build --target sweep_worker" >&2
    exit 2
fi

echo "== workdir: $WORKDIR (shards: $SHARDS, duration: ${DURATION_S}s)"

plan_args=(plan --shards "$SHARDS" --out-dir "$WORKDIR" --strategy "$STRATEGY"
           --duration-s "$DURATION_S" --grid-rows "$GRID_ROWS" --grid-cols "$GRID_COLS"
           --workloads "$WORKLOADS")
if [[ -n "$SCENARIOS" ]]; then
    plan_args+=(--scenarios "$SCENARIOS")
fi
if [[ -n "$STACK" ]]; then
    plan_args+=(--stack "$STACK")
fi
"$BIN" "${plan_args[@]}"

# -- Launch one worker per shard ---------------------------------------------
# Worker 1 (when it exists) is the crash-test dummy.  Its shard runs in
# three acts: a deterministic partial run (--max-cells 1, so the resume path
# is exercised even on machines fast enough to dodge the kill), a full
# attempt that gets SIGKILLed shortly after starting, and a final resumed
# run.  The journal must survive both interruptions with every fsync'd cell
# intact, and the resumed runs must skip — not recompute — those cells.
pids=()
journals=()
for ((k = 0; k < SHARDS; k++)); do
    shard=$(printf '%s/sweep-shard-%03d.csv' "$WORKDIR" "$k")
    journal=$(printf '%s/journal-%03d.csv' "$WORKDIR" "$k")
    journals+=("$journal")
    if [[ "$k" == 1 ]]; then
        continue  # handled separately below
    fi
    "$BIN" run --shard "$shard" --journal "$journal" \
        > "$WORKDIR/worker-$k.log" 2>&1 &
    pids+=("$!")
done

shard1_cells=0
if [[ "$SHARDS" -gt 1 ]]; then
    # Data rows = lines minus 2 metadata comments and the header.
    shard1_cells=$(($(wc -l < "$(printf '%s/sweep-shard-001.csv' "$WORKDIR")") - 3))
fi
if [[ "$shard1_cells" -gt 0 ]]; then
    shard1=$(printf '%s/sweep-shard-001.csv' "$WORKDIR")
    journal1=$(printf '%s/journal-001.csv' "$WORKDIR")
    # Act 1: deterministic partial run (exit 3 = incomplete, expected).
    "$BIN" run --shard "$shard1" --journal "$journal1" --batch 1 --max-cells 1 \
        > "$WORKDIR/worker-1.log" 2>&1 || [[ $? == 3 ]]
    # Act 2: full attempt, killed mid-run.
    "$BIN" run --shard "$shard1" --journal "$journal1" --batch 1 \
        >> "$WORKDIR/worker-1.log" 2>&1 &
    victim_pid=$!
    sleep 0.3
    if kill -KILL "$victim_pid" 2>/dev/null; then
        echo "== killed worker 1 (pid $victim_pid) mid-run; resuming it"
    else
        echo "== worker 1 finished before the kill (fast machine)"
    fi
    wait "$victim_pid" 2>/dev/null || true
    # Act 3: resume to completion; must report at least one resumed cell.
    "$BIN" run --shard "$shard1" --journal "$journal1" \
        > "$WORKDIR/resume.out" 2>&1
    cat "$WORKDIR/resume.out" >> "$WORKDIR/worker-1.log"
    grep -q '[1-9][0-9]* resumed' "$WORKDIR/resume.out" \
        || { echo "== FAIL: resumed worker recomputed journaled cells" >&2; exit 1; }
fi

for pid in "${pids[@]}"; do
    wait "$pid"
done
echo "== all workers done"

# -- Merge vs. single-process reference --------------------------------------
"$BIN" merge --plan "$WORKDIR/sweep-plan.csv" --out "$WORKDIR/merged.csv" \
    --json "$WORKDIR/merged.json" "${journals[@]}"
"$BIN" single --plan "$WORKDIR/sweep-plan.csv" --out "$WORKDIR/single.csv"

if diff -u "$WORKDIR/single.csv" "$WORKDIR/merged.csv"; then
    echo "== OK: merged sharded sweep is byte-identical to the single-process run"
    if [[ "$CLEANUP_WORKDIR" == 1 ]]; then
        rm -rf "$WORKDIR"
    fi
else
    echo "== FAIL: merged output differs from single-process run (kept: $WORKDIR)" >&2
    exit 1
fi
