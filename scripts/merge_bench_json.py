#!/usr/bin/env python3
"""merge_bench_json.py — merge google-benchmark JSON files into one.

The repo records its perf trajectory in a single baseline (BENCH_solver.json)
but measures it with more than one binary (bench_micro_solver,
bench_serve).  This script concatenates the `benchmarks` arrays of several
google-benchmark JSON outputs, keeping the `context` block of the first
file, and fails loudly on duplicate benchmark names — a duplicate means two
binaries define the same benchmark and the baseline would be ambiguous.

Usage:
  scripts/merge_bench_json.py OUT.json IN1.json IN2.json [...]
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"merge_bench_json: cannot read '{path}': {e}")
    if not isinstance(data, dict) or not isinstance(data.get("benchmarks"), list):
        sys.exit(f"merge_bench_json: '{path}' is not google-benchmark JSON")
    return data


def main(argv):
    if len(argv) < 3:
        sys.exit("usage: merge_bench_json.py OUT.json IN1.json [IN2.json ...]")
    out_path, in_paths = argv[1], argv[2:]

    merged = load(in_paths[0])
    seen = {b.get("name") for b in merged["benchmarks"]}
    for path in in_paths[1:]:
        for bench in load(path)["benchmarks"]:
            name = bench.get("name")
            if name in seen:
                sys.exit(f"merge_bench_json: duplicate benchmark '{name}' "
                         f"from '{path}'")
            seen.add(name)
            merged["benchmarks"].append(bench)

    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"merged {len(in_paths)} files, {len(seen)} benchmarks -> {out_path}")


if __name__ == "__main__":
    main(sys.argv)
