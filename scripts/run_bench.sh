#!/usr/bin/env bash
# run_bench.sh — build the benchmarks in Release and record the solver
# micro-benchmarks as machine-readable JSON (BENCH_solver.json at the repo
# root), starting the perf trajectory the acceptance criteria compare
# against.
#
# Usage: scripts/run_bench.sh [build-dir] [output.json]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_solver.json}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release -DLIQUID3D_BUILD_BENCH=ON >/dev/null
cmake --build "${build_dir}" --target bench_micro_solver bench_serve -j "$(nproc)"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

# BM_SteadyState also matches BM_SteadyStatePerCavity (the vector-flow
# assembly benchmark) by prefix; keep both in the JSON.  BM_Cg* is the
# iterative (PCG) backend, BM_FineGrid* the direct-solver cost at the same
# fine-grid shape — the pair documents the bandwidth crossover.  NOTE: the
# fine-grid direct factorization runs tens of seconds and allocates ~1.6 GB;
# a full refresh takes a few minutes.
"${build_dir}/bench_micro_solver" \
  --benchmark_format=json \
  --benchmark_out="${tmp_dir}/micro.json" \
  --benchmark_out_format=json \
  --benchmark_filter='BM_Banded|BM_TransientStep|BM_BatchedTransient|BM_SteadyState|BM_FlowLut|BM_Cg|BM_FineGrid'

# Service latency/throughput: steady-query p50/p99 (acceptance: warm-ROM
# p50 <= 100 us on the 2-layer Niagara liquid stack) and batched vs serial
# what-if throughput (acceptance: batched >= 2x serial sessions/s).
"${build_dir}/bench_serve" \
  --benchmark_format=json \
  --benchmark_out="${tmp_dir}/serve.json" \
  --benchmark_out_format=json \
  --benchmark_filter='BM_Serve'

python3 "${repo_root}/scripts/merge_bench_json.py" \
  "${out_json}" "${tmp_dir}/micro.json" "${tmp_dir}/serve.json"

echo "wrote ${out_json}"
