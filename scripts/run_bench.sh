#!/usr/bin/env bash
# run_bench.sh — build the benchmarks in Release and record the solver
# micro-benchmarks as machine-readable JSON (BENCH_solver.json at the repo
# root), starting the perf trajectory the acceptance criteria compare
# against.
#
# Each benchmark binary runs fail-fast: a crash (or a bench that dies after
# writing a partial JSON file) aborts the refresh with a pointed message
# instead of silently merging a truncated fragment into BENCH_solver.json.
#
# Usage: scripts/run_bench.sh [build-dir] [output.json]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_solver.json}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release -DLIQUID3D_BUILD_BENCH=ON >/dev/null
cmake --build "${build_dir}" \
  --target bench_micro_solver bench_serve bench_obs -j "$(nproc)"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

# Run one benchmark binary and refuse to proceed unless it exits 0 AND its
# JSON fragment parses.  google-benchmark streams --benchmark_out as it
# goes, so a mid-run SIGSEGV leaves a syntactically broken file behind —
# without the parse check that partial fragment would merge "successfully"
# and quietly drop every benchmark after the crash point.
run_bench() {
  local binary="$1" fragment="$2" filter="$3"
  local status=0
  "${build_dir}/${binary}" \
    --benchmark_format=json \
    --benchmark_out="${fragment}" \
    --benchmark_out_format=json \
    --benchmark_filter="${filter}" || status=$?
  if [[ "${status}" -ne 0 ]]; then
    echo "run_bench.sh: ${binary} exited with status ${status}; aborting" \
      "before merging partial results" >&2
    exit "${status}"
  fi
  if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      "${fragment}"; then
    echo "run_bench.sh: ${binary} wrote invalid JSON to ${fragment};" \
      "aborting before merge" >&2
    exit 1
  fi
}

# BM_SteadyState also matches BM_SteadyStatePerCavity (the vector-flow
# assembly benchmark) by prefix; keep both in the JSON.  BM_Cg* is the
# iterative (PCG) backend, BM_FineGrid* the direct-solver cost at the same
# fine-grid shape — the pair documents the bandwidth crossover.  NOTE: the
# fine-grid direct factorization runs tens of seconds and allocates ~1.6 GB;
# a full refresh takes a few minutes.
run_bench bench_micro_solver "${tmp_dir}/micro.json" \
  'BM_Banded|BM_TransientStep|BM_BatchedTransient|BM_SteadyState|BM_FlowLut|BM_Cg|BM_FineGrid'

# Service latency/throughput: steady-query p50/p99 (acceptance: warm-ROM
# p50 <= 100 us on the 2-layer Niagara liquid stack) and batched vs serial
# what-if throughput (acceptance: batched >= 2x serial sessions/s).
run_bench bench_serve "${tmp_dir}/serve.json" 'BM_Serve'

# Observability overhead: the killed-switch histogram record must stay
# single-digit nanoseconds and the enabled record in the tens.
run_bench bench_obs "${tmp_dir}/obs.json" \
  'BM_MetricsHotPath|BM_CounterAdd|BM_ScopedTimer'

python3 "${repo_root}/scripts/merge_bench_json.py" \
  "${out_json}" "${tmp_dir}/micro.json" "${tmp_dir}/serve.json" \
  "${tmp_dir}/obs.json"

echo "wrote ${out_json}"
