#!/usr/bin/env python3
"""check_bench_regression.py — fail CI when a benchmark regresses.

Compares the per-iteration times of a fresh google-benchmark JSON run
against the checked-in baseline (BENCH_solver.json) and exits non-zero if
any benchmark present in both files regressed by more than the threshold
(default 30%).

CI runners and the machine that recorded the baseline differ in absolute
speed, so by default the comparison is *normalized*: each benchmark's
current/baseline ratio is divided by the median ratio across all compared
benchmarks.  A uniformly slower (or faster) machine moves every ratio
together and cancels out; a genuine regression moves one benchmark against
the rest and survives normalization.  Pass --absolute to compare raw
ratios instead (sensible when baseline and current ran on the same host).

Corollary: an intentional perf change that speeds up many benchmarks
shifts the median and can make *unchanged* benchmarks read as regressed —
refresh the baseline (scripts/run_bench.sh) in the same commit as any
deliberate perf change.

Usage:
  scripts/check_bench_regression.py BASELINE.json CURRENT.json \
      [--threshold 0.30] [--absolute] [--filter REGEX]
"""

import argparse
import json
import re
import statistics
import sys


class InputError(Exception):
    """A problem with an input file, reported as one line — not a traceback.

    A missing or truncated JSON file usually means the benchmark binary
    crashed or never ran; the useful signal is *which file* and *why*, not
    forty frames of json internals.
    """


def per_iteration_times(path, name_filter):
    """name -> per-iteration real_time in ns for aggregate-free entries."""
    try:
        with open(path) as f:
            raw = f.read()
    except OSError as e:
        raise InputError(f"cannot read '{path}': {e.strerror or e}") from e
    if not raw.strip():
        raise InputError(
            f"'{path}' is empty — did the benchmark run crash before "
            "writing results?"
        )
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as e:
        raise InputError(f"'{path}' is not valid JSON ({e})") from e
    if not isinstance(data, dict) or not isinstance(data.get("benchmarks"), list):
        raise InputError(
            f"'{path}' is valid JSON but not google-benchmark output "
            "(expected a top-level 'benchmarks' array)"
        )
    times = {}
    for bench in data["benchmarks"]:
        if not isinstance(bench, dict):
            continue
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if not isinstance(name, str) or not isinstance(real_time, (int, float)):
            raise InputError(
                f"'{path}': benchmark entry missing 'name' or 'real_time' "
                "(truncated or hand-edited file?)"
            )
        if name_filter and not name_filter.search(name):
            continue
        unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
            bench.get("time_unit", "ns")
        )
        if unit_ns is None:
            raise InputError(
                f"'{path}': unknown time_unit "
                f"'{bench.get('time_unit')}' for benchmark '{name}'"
            )
        times[name] = real_time * unit_ns
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional slowdown (0.30 = +30%%)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw ratios (skip median machine-speed normalization)",
    )
    parser.add_argument(
        "--filter", default="", help="only compare benchmark names matching REGEX"
    )
    args = parser.parse_args()

    name_filter = re.compile(args.filter) if args.filter else None
    try:
        baseline = per_iteration_times(args.baseline, name_filter)
        current = per_iteration_times(args.current, name_filter)
    except InputError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("error: no benchmarks in common between baseline and current run")
        return 2

    ratios = {name: current[name] / baseline[name] for name in shared}
    scale = 1.0 if args.absolute else statistics.median(ratios.values())
    limit = 1.0 + args.threshold

    print(
        f"comparing {len(shared)} benchmarks "
        f"(machine-speed scale: {scale:.3f}, limit: {limit:.2f}x)"
    )
    failures = []
    for name in shared:
        normalized = ratios[name] / scale
        status = "OK"
        if normalized > limit:
            status = "REGRESSED"
            failures.append(name)
        print(
            f"  {status:9s} {name:55s} "
            f"base {baseline[name] / 1e3:12.1f}us  "
            f"now {current[name] / 1e3:12.1f}us  "
            f"x{normalized:.3f}"
        )

    only_current = sorted(set(current) - set(baseline))
    if only_current:
        print("new benchmarks (no baseline, informational):")
        for name in only_current:
            print(f"  NEW       {name:55s} now {current[name] / 1e3:12.1f}us")

    only_baseline = sorted(set(baseline) - set(current))
    if only_baseline:
        print(
            "baseline benchmarks absent from this run "
            "(filtered out or removed, informational):"
        )
        for name in only_baseline:
            print(f"  MISSING   {name:55s} base {baseline[name] / 1e3:12.1f}us")

    if failures:
        print(
            f"FAIL: {len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {args.baseline}"
        )
        return 1
    print("all benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
