#!/usr/bin/env bash
# run_daemon_smoke.sh — the wire transport end to end across real process
# boundaries: start serve_daemon on a unix socket, fire two concurrent
# serve_ctl bursts at it (--verify re-runs every answered wire lane solo
# in-process and requires bit-identical results), SIGTERM the daemon while
# the bursts are in flight, and require a graceful drain:
#
#   * both clients exit 0 — admitted lanes answered, late lanes rejected
#     with typed overloaded/shutting-down errors (a mismatch or transport
#     failure exits non-zero);
#   * the daemon prints its `drained accepted=... rejected=...` summary and
#     exits 0 — no hang, no dropped in-flight query.
#
# Phase A first runs one quiet burst to completion against a traced daemon
# and cross-checks the observability control plane: the `serve_ctl metrics`
# scrape must report exactly the counters the burst drove (4 session
# queries = 3 what-if + 1 replay, 2 steady queries, 6 accepted wire
# requests), `serve_ctl trace` must show solve-stage spans, and
# `stats --reset-hwm` must zero the windowed queue HWM without touching
# the lifetime one.
#
# Usage: scripts/run_daemon_smoke.sh [build-dir] [scratch-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
scratch="${2:-${repo_root}/daemon-smoke-scratch}"
daemon="${build_dir}/serve_daemon"
ctl="${build_dir}/serve_ctl"

rm -rf "${scratch}"
mkdir -p "${scratch}"
sock="${scratch}/daemon.sock"

# -- phase A: metrics/trace control plane against a quiet daemon --------------

obs_sock="${scratch}/obs-daemon.sock"
LIQUID3D_TRACE=1 "${daemon}" --listen "unix:${obs_sock}" --workers 2 \
  --max-inflight 6 > "${scratch}/obs-daemon.log" 2>&1 &
obs_daemon_pid=$!
trap 'kill -9 "${obs_daemon_pid}" 2>/dev/null || true' EXIT

for _ in $(seq 100); do
  [ -S "${obs_sock}" ] && grep -q '^listening ' "${scratch}/obs-daemon.log" && break
  sleep 0.1
done
grep -q '^listening ' "${scratch}/obs-daemon.log" || {
  echo "obs daemon never came up:" >&2
  cat "${scratch}/obs-daemon.log" >&2
  exit 1
}

# A short burst run to completion (no SIGTERM): every lane must be
# admitted and answered, so the counter totals below are exact.
"${ctl}" burst --connect "unix:${obs_sock}" \
  --scenario talb-var --benchmark Web-med --duration-s 5 \
  --grid-rows 8 --grid-cols 9 \
  --count 3 --steady 2 --verify \
  > "${scratch}/obs-burst.log" 2>&1 || {
  echo "phase A burst failed:" >&2
  cat "${scratch}/obs-burst.log" >&2
  exit 1
}
grep -q '^verify=ok' "${scratch}/obs-burst.log" || {
  echo "phase A burst verify not ok" >&2
  cat "${scratch}/obs-burst.log" >&2
  exit 1
}

"${ctl}" metrics --connect "unix:${obs_sock}" > "${scratch}/metrics.txt"
"${ctl}" trace --connect "unix:${obs_sock}" > "${scratch}/trace.txt"
echo "--- metrics scrape ---"; cat "${scratch}/metrics.txt"

obs_fail=0
expect_metric() {
  grep -qx "$1" "${scratch}/metrics.txt" || {
    echo "metrics scrape missing '$1'" >&2
    obs_fail=1
  }
}
# 3 what-if + 1 replay through the session queue, 2 steady, and all 6
# admitted over the wire (stats/metrics/trace are control-plane requests
# and must NOT count as accepted queries).
expect_metric 'liquid3d_serve_session_queries_total 4'
expect_metric 'liquid3d_serve_steady_queries_total 2'
expect_metric 'liquid3d_serve_wire_accepted_total 6'
expect_metric 'liquid3d_serve_wire_rejected_total 0'

# The traced burst must have recorded per-stage spans, including a solve
# stage for every admitted query.
grep -q 'stage=solve' "${scratch}/trace.txt" || {
  echo "trace dump has no solve spans:" >&2
  cat "${scratch}/trace.txt" >&2
  obs_fail=1
}
grep -q 'stage=request' "${scratch}/trace.txt" || {
  echo "trace dump has no root request spans" >&2
  obs_fail=1
}

# Windowed queue HWM: nonzero after the burst, zero after --reset-hwm
# (the lifetime HWM must survive the reset).
"${ctl}" stats --connect "unix:${obs_sock}" > "${scratch}/stats-before.txt"
grep -q 'wire_queue_hwm_window=[1-9]' "${scratch}/stats-before.txt" || {
  echo "windowed HWM not raised by the burst" >&2
  obs_fail=1
}
"${ctl}" stats --connect "unix:${obs_sock}" --reset-hwm > /dev/null
"${ctl}" stats --connect "unix:${obs_sock}" > "${scratch}/stats-after.txt"
grep -q 'wire_queue_hwm_window=0' "${scratch}/stats-after.txt" || {
  echo "windowed HWM did not reset" >&2
  obs_fail=1
}
if grep -q 'wire_queue_hwm=0' "${scratch}/stats-after.txt"; then
  echo "lifetime HWM was clobbered by --reset-hwm" >&2
  obs_fail=1
fi

kill -TERM "${obs_daemon_pid}"
wait "${obs_daemon_pid}" || { echo "obs daemon exited non-zero" >&2; obs_fail=1; }
trap - EXIT

if [ "${obs_fail}" -ne 0 ]; then
  echo "daemon smoke FAILED (phase A: observability)" >&2
  exit 1
fi
echo "phase A (metrics/trace/reset-hwm) OK"

# -- phase B: concurrent bursts + SIGTERM mid-burst ---------------------------

# max-inflight 6 < the 10 lanes the two bursts submit, so the smoke also
# exercises typed overload rejections, not just the happy path.
"${daemon}" --listen "unix:${sock}" --workers 2 --max-inflight 6 \
  > "${scratch}/daemon.log" 2>&1 &
daemon_pid=$!
trap 'kill -9 "${daemon_pid}" 2>/dev/null || true' EXIT

for _ in $(seq 100); do
  [ -S "${sock}" ] && grep -q '^listening ' "${scratch}/daemon.log" && break
  sleep 0.1
done
grep -q '^listening ' "${scratch}/daemon.log" || {
  echo "daemon never came up:" >&2
  cat "${scratch}/daemon.log" >&2
  exit 1
}

# 60 s simulated seconds per lane keeps each what-if in flight long enough
# (~0.1-0.5 s of wall clock at the 8x9 grid) for the SIGTERM to land
# mid-burst.
burst() {
  "${ctl}" burst --connect "unix:${sock}" \
    --scenario talb-var --benchmark Web-med --duration-s 60 \
    --grid-rows 8 --grid-cols 9 \
    --count 3 --steady 2 --verify \
    > "${scratch}/client$1.log" 2>&1
}
burst 1 &
client1=$!
burst 2 &
client2=$!

sleep 0.3  # let the lanes reach the admission queue
kill -TERM "${daemon_pid}"

fail=0
wait "${client1}" || { echo "client 1 failed" >&2; fail=1; }
wait "${client2}" || { echo "client 2 failed" >&2; fail=1; }
wait "${daemon_pid}" || { echo "daemon exited non-zero" >&2; fail=1; }
trap - EXIT

echo "--- client 1 ---"; cat "${scratch}/client1.log"
echo "--- client 2 ---"; cat "${scratch}/client2.log"
echo "--- daemon ---"; cat "${scratch}/daemon.log"

grep -q '^draining$' "${scratch}/daemon.log" || { echo "no draining line" >&2; fail=1; }
grep -q '^drained ' "${scratch}/daemon.log" || { echo "no drained summary" >&2; fail=1; }
grep -q '^verify=ok' "${scratch}/client1.log" || { echo "client 1 verify not ok" >&2; fail=1; }
grep -q '^verify=ok' "${scratch}/client2.log" || { echo "client 2 verify not ok" >&2; fail=1; }

if [ "${fail}" -ne 0 ]; then
  echo "daemon smoke FAILED" >&2
  exit 1
fi
echo "daemon smoke OK"
