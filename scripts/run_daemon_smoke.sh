#!/usr/bin/env bash
# run_daemon_smoke.sh — the wire transport end to end across real process
# boundaries: start serve_daemon on a unix socket, fire two concurrent
# serve_ctl bursts at it (--verify re-runs every answered wire lane solo
# in-process and requires bit-identical results), SIGTERM the daemon while
# the bursts are in flight, and require a graceful drain:
#
#   * both clients exit 0 — admitted lanes answered, late lanes rejected
#     with typed overloaded/shutting-down errors (a mismatch or transport
#     failure exits non-zero);
#   * the daemon prints its `drained accepted=... rejected=...` summary and
#     exits 0 — no hang, no dropped in-flight query.
#
# Usage: scripts/run_daemon_smoke.sh [build-dir] [scratch-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
scratch="${2:-${repo_root}/daemon-smoke-scratch}"
daemon="${build_dir}/serve_daemon"
ctl="${build_dir}/serve_ctl"

rm -rf "${scratch}"
mkdir -p "${scratch}"
sock="${scratch}/daemon.sock"

# max-inflight 6 < the 10 lanes the two bursts submit, so the smoke also
# exercises typed overload rejections, not just the happy path.
"${daemon}" --listen "unix:${sock}" --workers 2 --max-inflight 6 \
  > "${scratch}/daemon.log" 2>&1 &
daemon_pid=$!
trap 'kill -9 "${daemon_pid}" 2>/dev/null || true' EXIT

for _ in $(seq 100); do
  [ -S "${sock}" ] && grep -q '^listening ' "${scratch}/daemon.log" && break
  sleep 0.1
done
grep -q '^listening ' "${scratch}/daemon.log" || {
  echo "daemon never came up:" >&2
  cat "${scratch}/daemon.log" >&2
  exit 1
}

# 60 s simulated seconds per lane keeps each what-if in flight long enough
# (~0.1-0.5 s of wall clock at the 8x9 grid) for the SIGTERM to land
# mid-burst.
burst() {
  "${ctl}" burst --connect "unix:${sock}" \
    --scenario talb-var --benchmark Web-med --duration-s 60 \
    --grid-rows 8 --grid-cols 9 \
    --count 3 --steady 2 --verify \
    > "${scratch}/client$1.log" 2>&1
}
burst 1 &
client1=$!
burst 2 &
client2=$!

sleep 0.3  # let the lanes reach the admission queue
kill -TERM "${daemon_pid}"

fail=0
wait "${client1}" || { echo "client 1 failed" >&2; fail=1; }
wait "${client2}" || { echo "client 2 failed" >&2; fail=1; }
wait "${daemon_pid}" || { echo "daemon exited non-zero" >&2; fail=1; }
trap - EXIT

echo "--- client 1 ---"; cat "${scratch}/client1.log"
echo "--- client 2 ---"; cat "${scratch}/client2.log"
echo "--- daemon ---"; cat "${scratch}/daemon.log"

grep -q '^draining$' "${scratch}/daemon.log" || { echo "no draining line" >&2; fail=1; }
grep -q '^drained ' "${scratch}/daemon.log" || { echo "no drained summary" >&2; fail=1; }
grep -q '^verify=ok' "${scratch}/client1.log" || { echo "client 1 verify not ok" >&2; fail=1; }
grep -q '^verify=ok' "${scratch}/client2.log" || { echo "client 2 verify not ok" >&2; fail=1; }

if [ "${fail}" -ne 0 ]; then
  echo "daemon smoke FAILED" >&2
  exit 1
fi
echo "daemon smoke OK"
