// bench_fig6_hotspots_energy — reproduces Fig. 6: average and maximum
// hot-spot time (>85 C) across the eight Table II workloads, and chip/pump
// energy normalized to LB on the air-cooled system, for all seven policies
// on the 2-layer stack.  Also prints the per-workload cooling/total energy
// savings behind the paper's "up to 30 % cooling / 12 % overall" headline.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace liquid3d;

  SuiteConfig sc;
  sc.duration = SimTime::from_s(40);
  ExperimentSuite suite(sc);
  const std::vector<PolicySummary> results = suite.run_paper_grid();
  const PolicySummary& baseline = find_baseline(results);
  const double e0 = baseline.total_chip_energy();

  std::cout << "== Fig. 6: hot spots and energy, 2-layer system ==\n";
  TablePrinter t({"policy", "hot spots avg [%>85C]", "hot spots max [%>85C]",
                  "chip energy (norm)", "pump energy (norm)", ">80C avg [%]"});
  for (const PolicySummary& s : results) {
    t.add_row({s.label + (s.label == "TALB (Var)" ? " *" : ""),
               TablePrinter::num(s.mean_hotspot_percent(), 2),
               TablePrinter::num(s.max_hotspot_percent(), 2),
               TablePrinter::num(s.total_chip_energy() / e0, 3),
               TablePrinter::num(s.total_pump_energy() / e0, 3),
               TablePrinter::num(s.mean_above_target_percent(), 2)});
  }
  t.print(std::cout);
  std::cout << "(*) the paper's technique.  Energies normalized to LB (Air) "
               "chip energy, as in the paper.\n";

  // Headline savings: TALB (Var) vs the worst-case flow configurations.
  const PolicySummary& var = results.back();
  const PolicySummary& lb_max = results[3];

  std::cout << "\n== Energy savings of TALB (Var) vs LB (Max) per workload ==\n";
  TablePrinter s({"workload", "cooling energy saved", "total energy saved",
                  "hot spots [%]", "peak T [C]", "avg setting"});
  double best_cooling = 0.0;
  double best_total = 0.0;
  for (std::size_t i = 0; i < var.per_workload.size(); ++i) {
    const SimulationResult& v = var.per_workload[i];
    const SimulationResult& m = lb_max.per_workload[i];
    const double cool_save = 1.0 - v.pump_energy_j / m.pump_energy_j;
    const double total_save = 1.0 - v.total_energy_j / m.total_energy_j;
    best_cooling = std::max(best_cooling, cool_save);
    best_total = std::max(best_total, total_save);
    s.add_row({v.benchmark, TablePrinter::pct(100.0 * cool_save, 1),
               TablePrinter::pct(100.0 * total_save, 1),
               TablePrinter::num(v.hotspot_percent, 2),
               TablePrinter::num(v.hotspot_max_sample, 1),
               TablePrinter::num(v.avg_pump_setting + 1.0, 2)});
  }
  s.print(std::cout);
  std::cout << "max cooling-energy saving: " << TablePrinter::pct(100.0 * best_cooling, 1)
            << " (paper: up to 30%)\n"
            << "max total-energy saving:   " << TablePrinter::pct(100.0 * best_total, 1)
            << " (paper: up to 12%)\n"
            << "Shape checks: liquid eliminates the air system's hot spots; "
               "savings grow as utilization falls (gzip/MPlayer best, the "
               "high-utilization web workloads least).  Magnitudes exceed "
               "the paper's because the pressure-limited flow regime widens "
               "the controllable range — see EXPERIMENTS.md.\n";
  return 0;
}
