// bench_table1_model_params — reproduces Table I (microchannel model
// parameters) and Table III (thermal model & floorplan parameters), printing
// the paper's value next to the value the library actually computes/uses.
#include <iostream>

#include "common/table.hpp"
#include "coolant/microchannel.hpp"
#include "geom/niagara.hpp"
#include "geom/stack.hpp"
#include "thermal/model3d.hpp"

int main() {
  using namespace liquid3d;
  const Stack3D stack = make_2layer_system();
  const MicrochannelModel model(stack.cavity(), CoolantProperties::water());
  const ThermalModelParams tp;

  std::cout << "== Table I: parameters for computing Eq. 1 ==\n";
  TablePrinter t1({"parameter", "paper", "library", "unit"});
  t1.add_row({"R_th-BEOL", "5.333",
              TablePrinter::num(model.params().r_beol_area() * 1e6, 3), "K mm^2/W"});
  t1.add_row({"t_B", "12", TablePrinter::num(stack.layer(0).beol_thickness * 1e6, 0),
              "um"});
  t1.add_row({"k_BEOL", "2.25", TablePrinter::num(model.params().beol_conductivity, 2),
              "W/(m K)"});
  t1.add_row({"c_p", "4183", TablePrinter::num(model.coolant().heat_capacity, 0),
              "J/(kg K)"});
  t1.add_row({"rho", "998", TablePrinter::num(model.coolant().density, 0), "kg/m^3"});
  t1.add_row({"h", "37132", TablePrinter::num(model.params().heat_transfer_coeff, 0),
              "W/(m^2 K)"});
  t1.add_row({"h_eff = h 2(wc+tc)/p", "-", TablePrinter::num(model.h_eff(), 0),
              "W/(m^2 K)"});
  t1.add_row({"w_c", "50", TablePrinter::num(stack.cavity().channel_width * 1e6, 0),
              "um"});
  t1.add_row({"t_c", "100", TablePrinter::num(stack.cavity().channel_height * 1e6, 0),
              "um"});
  t1.add_row({"t_s", "50", TablePrinter::num(stack.cavity().wall_thickness * 1e6, 0),
              "um"});
  t1.add_row({"p", "100", TablePrinter::num(stack.cavity().pitch * 1e6, 0), "um"});
  t1.print(std::cout);

  std::cout << "\n== Table III: thermal model and floorplan parameters ==\n";
  TablePrinter t3({"parameter", "paper", "library", "unit"});
  t3.add_row({"die thickness", "0.15",
              TablePrinter::num(stack.layer(0).die_thickness * 1e3, 2), "mm"});
  const Floorplan core_die = make_niagara_core_die();
  const Floorplan cache_die = make_niagara_cache_die();
  t3.add_row({"area per core", "10",
              TablePrinter::num(core_die.block(0).rect.area() * 1e6, 1), "mm^2"});
  t3.add_row({"area per L2", "19",
              TablePrinter::num(cache_die.block(0).rect.area() * 1e6, 1), "mm^2"});
  t3.add_row({"total layer area", "115", TablePrinter::num(core_die.area() * 1e6, 1),
              "mm^2"});
  t3.add_row({"convection capacitance", "140", TablePrinter::num(tp.sink_capacitance, 0),
              "J/K"});
  t3.add_row({"convection resistance", "0.1",
              TablePrinter::num(tp.sink_to_ambient_resistance, 2) + " (calibrated)",
              "K/W"});
  t3.add_row({"interlayer thickness (bond)", "0.02",
              TablePrinter::num(stack.bond_thickness() * 1e3, 2), "mm"});
  t3.add_row({"interlayer thickness (channels)", "0.4",
              TablePrinter::num(stack.cavity().cavity_thickness * 1e3, 1), "mm"});
  t3.add_row({"interlayer resistivity (no TSV)", "0.25",
              TablePrinter::num(stack.interlayer_resistivity(), 2), "m K/W"});
  t3.print(std::cout);

  std::cout << "\n== Derived channel/TSV structure (Sec. III-A) ==\n";
  TablePrinter td({"quantity", "paper", "library"});
  td.add_row({"channels per cavity", "65", std::to_string(stack.cavity().channel_count)});
  td.add_row({"channels, 2-layer system", "195",
              std::to_string(make_2layer_system().total_channel_count())});
  td.add_row({"channels, 4-layer system", "325",
              std::to_string(make_4layer_system().total_channel_count())});
  td.add_row({"TSVs in crossbar", "128", std::to_string(stack.tsvs().count)});
  td.add_row({"TSV size", "50x50 um",
              TablePrinter::num(stack.tsvs().side * 1e6, 0) + "x" +
                  TablePrinter::num(stack.tsvs().side * 1e6, 0) + " um"});
  td.print(std::cout);

  std::cout << "\nNote: the air package convection resistance is calibrated (see "
               "DESIGN.md) so the air-cooled 3D stack reproduces the hot-spot "
               "regime of Fig. 6; Table III's 0.1 K/W is the bare convection "
               "term of the paper's package.\n";
  return 0;
}
