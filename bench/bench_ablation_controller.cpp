// bench_ablation_controller — ablations of the controller design choices
// DESIGN.md calls out:
//   1. proactive (ARMA forecast) vs reactive (act on the measurement) flow
//      control, given the ~275 ms pump transition latency;
//   2. hysteresis width (the paper uses 2 C);
//   3. TALB's characterized weights vs uniform weights (reduces to LB).
// All on the 2-layer system, Web-med (the mid-utilization workload where
// the controller actually moves).
#include <iostream>

#include "common/table.hpp"
#include "sim/simulator.hpp"

namespace {

liquid3d::SimulationResult run_cell(liquid3d::SimulationConfig cfg) {
  liquid3d::Simulator sim(std::move(cfg));
  return sim.run();
}

}  // namespace

int main() {
  using namespace liquid3d;

  SimulationConfig base;
  base.cooling = CoolingMode::kLiquidVar;
  base.policy = Policy::kTalb;
  base.benchmark = *find_benchmark("Web-med");
  base.duration = SimTime::from_s(40);
  base.seed = 17;
  base.flow_lut = Simulator::build_flow_lut(base);
  base.talb_weights = Simulator::build_talb_weights(base);

  std::cout << "== Ablation 1: proactive vs reactive flow control ==\n";
  {
    TablePrinter t({"controller", ">80C [%]", "peak T [C]", "pump energy [J]",
                    "pump transitions"});
    for (bool reactive : {false, true}) {
      SimulationConfig cfg = base;
      cfg.manager.reactive = reactive;
      const SimulationResult r = run_cell(cfg);
      t.add_row({reactive ? "reactive (measurement)" : "proactive (ARMA forecast)",
                 TablePrinter::num(r.above_target_percent, 2),
                 TablePrinter::num(r.hotspot_max_sample, 2),
                 TablePrinter::num(r.pump_energy_j, 1),
                 std::to_string(r.pump_transitions)});
    }
    t.print(std::cout);
    std::cout << "Both controllers hold the target (the measured-temperature "
                 "guard backstops each), but the reactive one flaps the pump "
                 "several times more often — exactly the oscillation the "
                 "paper's proactive design avoids; the forecast pre-arms the "
                 "275 ms pump transition before the heat arrives.\n\n";
  }

  std::cout << "== Ablation 2: hysteresis width ==\n";
  {
    TablePrinter t({"hysteresis [C]", ">80C [%]", "pump energy [J]",
                    "pump transitions"});
    for (double h : {0.0, 1.0, 2.0, 4.0}) {
      SimulationConfig cfg = base;
      cfg.manager.controller.hysteresis = h;
      const SimulationResult r = run_cell(cfg);
      t.add_row({TablePrinter::num(h, 1), TablePrinter::num(r.above_target_percent, 2),
                 TablePrinter::num(r.pump_energy_j, 1),
                 std::to_string(r.pump_transitions)});
    }
    t.print(std::cout);
    std::cout << "Wider hysteresis trades a little pump energy for fewer "
                 "setting changes (the paper settles on 2 C).\n\n";
  }

  std::cout << "== Ablation 3: TALB weights vs uniform (plain LB) ==\n";
  {
    TablePrinter t({"weights", "spatial gradients >15C [%]", "avg Tmax [C]",
                    "peak T [C]"});
    for (bool uniform : {false, true}) {
      SimulationConfig cfg = base;
      if (uniform) {
        cfg.talb_weights = std::make_shared<const TalbWeightTable>(
            TalbWeightTable::uniform(8));
      }
      const SimulationResult r = run_cell(cfg);
      t.add_row({uniform ? "uniform (= LB)" : "characterized (TALB)",
                 TablePrinter::num(r.spatial_gradient_percent, 2),
                 TablePrinter::num(r.avg_tmax, 2),
                 TablePrinter::num(r.hotspot_max_sample, 2)});
    }
    t.print(std::cout);
    std::cout << "Position-aware weights steer work toward the cores the "
                 "coolant serves best, trimming the worst-case (peak) "
                 "temperature the flow controller must budget for.\n";
  }
  return 0;
}
