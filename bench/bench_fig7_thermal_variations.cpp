// bench_fig7_thermal_variations — reproduces Fig. 7: the frequency of large
// spatial gradients (>15 C among units) and large thermal cycles (>20 C),
// with DPM enabled, for all seven policies on the 2-layer system.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace liquid3d;

  SuiteConfig sc;
  sc.duration = SimTime::from_s(40);
  sc.dpm_enabled = true;  // "In the experiments in Figure 7, we run DPM"
  ExperimentSuite suite(sc);
  const std::vector<PolicySummary> results = suite.run_paper_grid();

  std::cout << "== Fig. 7: thermal variations (with DPM), 2-layer system ==\n";
  TablePrinter t({"policy", "spatial gradients >15C [%]", "thermal cycles >20C",
                  "sleep-heavy workloads' cycles"});
  for (const PolicySummary& s : results) {
    // The cycle metric concentrated on the low-utilization workloads where
    // DPM actually sleeps cores (gzip, MPlayer, gcc, Database).
    double low_util_cycles = 0.0;
    int low_util_count = 0;
    for (const SimulationResult& r : s.per_workload) {
      if (r.benchmark == "gzip" || r.benchmark == "MPlayer" || r.benchmark == "gcc" ||
          r.benchmark == "Database") {
        low_util_cycles += r.thermal_cycles_per_1000;
        ++low_util_count;
      }
    }
    t.add_row({s.label + (s.label == "TALB (Var)" ? " *" : ""),
               TablePrinter::num(s.mean_gradient_percent(), 2),
               TablePrinter::num(s.mean_cycles_per_1000(), 2),
               TablePrinter::num(low_util_cycles / low_util_count, 2)});
  }
  t.print(std::cout);

  std::cout << "(*) the paper's technique.  Cycles are per 1000 core-samples "
               "(100 ms sampling).\n"
               "Shape checks vs the paper: air-cooled policies suffer the "
               "most DPM-driven cycling; migration reduces gradients and "
               "cycles relative to plain LB; the worst-case-flow liquid "
               "configurations suppress both almost entirely.  One departure "
               "is documented in EXPERIMENTS.md: at the pressure-limited "
               "flows the variable-flow controller runs with a warmer, "
               "axially stratified coolant, so TALB (Var) shows *more* "
               "spatial gradients than the paper's (its coolant heated <1 C "
               "end to end), not fewer.\n";
  return 0;
}
