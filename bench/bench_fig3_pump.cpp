// bench_fig3_pump — reproduces Fig. 3: pump power consumption and per-cavity
// flow rates across the five settings, for the 2- and 4-layer systems (the
// paper's 50 % delivery accounting), alongside the pressure-limited delivery
// model the thermal simulation uses (see coolant/flow.hpp and DESIGN.md).
#include <iostream>

#include "common/table.hpp"
#include "coolant/flow.hpp"
#include "geom/stack.hpp"

int main() {
  using namespace liquid3d;
  const PumpModel pump = PumpModel::laing_ddc();
  const MicrochannelModel channels(CavitySpec{}, CoolantProperties::water());

  const FlowDelivery nominal2(pump, FlowDeliveryMode::kPaperNominal, channels, 11.5e-3,
                              make_2layer_system().cavity_count());
  const FlowDelivery nominal4(pump, FlowDeliveryMode::kPaperNominal, channels, 11.5e-3,
                              make_4layer_system().cavity_count());
  const FlowDelivery limited(pump, FlowDeliveryMode::kPressureLimited, channels,
                             11.5e-3, make_2layer_system().cavity_count());

  std::cout << "== Fig. 3: pump power and per-cavity flow rates ==\n";
  TablePrinter t({"setting", "pump FR [l/h]", "power [W]", "FR/cavity 2-layer [ml/min]",
                  "FR/cavity 4-layer [ml/min]", "pressure-limited [ml/min]",
                  "head [mbar]"});
  for (std::size_t s = 0; s < pump.setting_count(); ++s) {
    t.add_row({std::to_string(s + 1),
               TablePrinter::num(pump.setting(s).nominal_flow_l_per_hour, 0),
               TablePrinter::num(pump.power(s), 2),
               TablePrinter::num(nominal2.per_cavity(s).ml_per_min(), 1),
               TablePrinter::num(nominal4.per_cavity(s).ml_per_min(), 1),
               TablePrinter::num(limited.per_cavity(s).ml_per_min(), 2),
               TablePrinter::num(FlowDelivery::head_pa(s, pump.setting_count()) / 100.0,
                                 0)});
  }
  t.print(std::cout);

  std::cout << "\nPaper series (Fig. 3): power 3..21 W quadratic; per-cavity "
               "208..1042 ml/min (2-layer) and 125..625 ml/min (4-layer) "
               "after the 50 % loss factor.  The pressure-limited column is "
               "the laminar-hydraulics-consistent delivery used by the "
               "thermal simulation (the paper quotes 300-600 mbar of head "
               "across these settings; a 50x100 um channel passes ~0.06-0.22 "
               "ml/min at such heads).\n";
  return 0;
}
