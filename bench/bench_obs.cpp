// bench_obs — the cost of the observability layer itself:
//
//   BM_MetricsHotPath          one Histogram::record with the layer enabled
//                              (a bucket-index computation plus two relaxed
//                              atomic RMWs) — the marginal cost every timed
//                              solver/serve operation pays
//   BM_MetricsHotPathDisabled  the same call with the runtime kill switch
//                              off — must compile down to one relaxed
//                              atomic load and a branch (the CI gate holds
//                              it to single-digit nanoseconds)
//   BM_CounterAdd              one sharded Counter::add (unconditional —
//                              counters back functional stats and are never
//                              gated)
//   BM_ScopedTimerEnabled      full ScopedTimer lifecycle: two steady-clock
//                              reads plus the histogram record
//
// These are recorded into BENCH_solver.json; check_bench_regression.py
// gates BM_MetricsHotPathDisabled so the kill switch stays genuinely free
// and the instrumented serve p50 so the enabled path stays in the noise.
#include <benchmark/benchmark.h>

#include "obs/metrics.hpp"

namespace {

using namespace liquid3d;

void BM_MetricsHotPath(benchmark::State& state) {
  obs::ScopedEnabled on(true);
  obs::Histogram h;
  double v = 1.0e-6;
  for (auto _ : state) {
    h.record(v);
    v += 1.0e-9;  // defeat value-based CSE without a memory barrier
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHotPath);

void BM_MetricsHotPathDisabled(benchmark::State& state) {
  obs::ScopedEnabled off(false);
  obs::Histogram h;
  double v = 1.0e-6;
  for (auto _ : state) {
    h.record(v);
    v += 1.0e-9;
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsHotPathDisabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.add();
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterAdd);

void BM_ScopedTimerEnabled(benchmark::State& state) {
  obs::ScopedEnabled on(true);
  obs::Histogram h;
  for (auto _ : state) {
    obs::ScopedTimer t(h);
  }
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedTimerEnabled);

}  // namespace

BENCHMARK_MAIN();
