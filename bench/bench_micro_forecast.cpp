// bench_micro_forecast — micro-benchmarks for the runtime control path: the
// per-sample cost of the ARMA observe/forecast pipeline and of a full
// ARMA refit, plus the LUT lookup (which the paper argues is negligible).
#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "control/flow_lut.hpp"
#include "forecast/adaptive_predictor.hpp"

namespace {

using namespace liquid3d;

std::vector<double> make_signal(std::size_t n) {
  Rng rng(1);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 72.0 +
           4.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 90.0) +
           0.3 * rng.normal();
  }
  return x;
}

void BM_PredictorObserveForecast(benchmark::State& state) {
  const std::vector<double> signal = make_signal(4096);
  AdaptivePredictor p;
  std::size_t i = 0;
  for (auto _ : state) {
    p.observe(signal[i % signal.size()]);
    benchmark::DoNotOptimize(p.forecast());
    ++i;
  }
  state.SetLabel("one 100ms control sample");
}
BENCHMARK(BM_PredictorObserveForecast);

void BM_ArmaRefit(benchmark::State& state) {
  const std::vector<double> signal = make_signal(128);
  ArmaConfig cfg;
  cfg.ar_order = static_cast<std::size_t>(state.range(0));
  cfg.ma_order = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    ArmaModel m = ArmaModel::fit(signal, cfg);
    benchmark::DoNotOptimize(m.residual_std());
  }
}
BENCHMARK(BM_ArmaRefit)->Args({5, 0})->Args({5, 2})->Args({8, 4});

void BM_LutLookup(benchmark::State& state) {
  const FlowLut lut = FlowLut::characterize(
      [](double u, std::size_t s) {
        return 70.0 - 6.0 * static_cast<double>(s) + 30.0 * u;
      },
      5, 80.0, 101);
  double t = 60.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.required_setting(2, t));
    t = t < 95.0 ? t + 0.01 : 60.0;
  }
  state.SetLabel("negligible, as the paper argues");
}
BENCHMARK(BM_LutLookup);

}  // namespace

BENCHMARK_MAIN();
