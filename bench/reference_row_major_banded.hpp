// reference_row_major_banded.hpp — the seed's row-major banded Cholesky,
// kept verbatim (modulo naming) as the benchmark baseline so the solver
// engine's speedup over it stays measurable in one binary.  Not part of the
// library; benchmarks only.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace liquid3d_bench {

/// Row-major lower-band storage: element (i, j) with i-b <= j <= i lives at
/// band_[i * (b+1) + (j - i + b)] — the seed layout whose factorize/solve
/// inner loops stride by the full band width.
class SeedRowMajorBanded {
 public:
  SeedRowMajorBanded(std::size_t n, std::size_t half_bandwidth)
      : n_(n), b_(half_bandwidth), band_(n * (half_bandwidth + 1), 0.0) {}

  void add_diagonal(std::size_t i, double g) { at(i, i) += g; }

  void add_coupling(std::size_t i, std::size_t j, double g) {
    const std::size_t lo = std::min(i, j);
    const std::size_t hi = std::max(i, j);
    at(lo, lo) += g;
    at(hi, hi) += g;
    at(hi, lo) -= g;
  }

  void factorize() {
    const std::size_t w = b_ + 1;
    for (std::size_t j = 0; j < n_; ++j) {
      double d = band_[j * w + b_];
      const std::size_t k_lo = (j >= b_) ? j - b_ : 0;
      for (std::size_t k = k_lo; k < j; ++k) {
        const double ljk = band_[j * w + (k - j + b_)];
        d -= ljk * ljk;
      }
      LIQUID3D_ASSERT(d > 0.0, "banded Cholesky: non-positive pivot");
      const double ljj = std::sqrt(d);
      band_[j * w + b_] = ljj;
      const double inv = 1.0 / ljj;
      const std::size_t i_hi = std::min(n_ - 1, j + b_);
      for (std::size_t i = j + 1; i <= i_hi; ++i) {
        double s = band_[i * w + (j - i + b_)];
        const std::size_t kk_lo = std::max((i >= b_) ? i - b_ : 0, k_lo);
        for (std::size_t k = kk_lo; k < j; ++k) {
          s -= band_[i * w + (k - i + b_)] * band_[j * w + (k - j + b_)];
        }
        band_[i * w + (j - i + b_)] = s * inv;
      }
    }
  }

  void solve(std::vector<double>& rhs) const {
    const std::size_t w = b_ + 1;
    for (std::size_t i = 0; i < n_; ++i) {
      double s = rhs[i];
      const std::size_t k_lo = (i >= b_) ? i - b_ : 0;
      for (std::size_t k = k_lo; k < i; ++k) {
        s -= band_[i * w + (k - i + b_)] * rhs[k];
      }
      rhs[i] = s / band_[i * w + b_];
    }
    for (std::size_t ii = n_; ii-- > 0;) {
      double s = rhs[ii];
      const std::size_t j_hi = std::min(n_ - 1, ii + b_);
      for (std::size_t j = ii + 1; j <= j_hi; ++j) {
        s -= band_[j * w + (ii - j + b_)] * rhs[j];
      }
      rhs[ii] = s / band_[ii * w + b_];
    }
  }

 private:
  double& at(std::size_t i, std::size_t j) {
    return band_[i * (b_ + 1) + (j - i + b_)];
  }

  std::size_t n_;
  std::size_t b_;
  std::vector<double> band_;
};

}  // namespace liquid3d_bench
