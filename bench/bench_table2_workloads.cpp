// bench_table2_workloads — reproduces Table II: the eight benchmark
// characteristics, plus the statistics the synthetic trace generator
// actually achieves (10 simulated minutes on 8 cores).
#include <iostream>

#include "common/table.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace liquid3d;

  std::cout << "== Table II: workload characteristics ==\n";
  TablePrinter t({"#", "benchmark", "util% (paper)", "util% (synth)", "L2 I-miss",
                  "L2 D-miss", "FP instr", "activity", "mem-int"});

  for (const BenchmarkSpec& b : table2_benchmarks()) {
    // Measure the synthesized offered load over 10 simulated minutes.
    WorkloadGenerator gen(b, 8, 1000 + static_cast<std::uint64_t>(b.id));
    const SimTime tick = SimTime::from_ms(100);
    double work_s = 0.0;
    const std::size_t ticks = 6000;
    for (std::size_t k = 0; k < ticks; ++k) {
      for (const Thread& th :
           gen.tick(SimTime::from_ms(static_cast<std::int64_t>(k) * 100), tick)) {
        work_s += th.total_length.as_s();
      }
    }
    const double synth_util = work_s / (8.0 * static_cast<double>(ticks) * 0.1);

    t.add_row({std::to_string(b.id), b.name,
               TablePrinter::num(100.0 * b.avg_utilization, 2),
               TablePrinter::num(100.0 * synth_util, 2),
               TablePrinter::num(b.l2_i_miss, 1), TablePrinter::num(b.l2_d_miss, 1),
               TablePrinter::num(b.fp_per_100k, 1),
               TablePrinter::num(b.activity_factor(), 3),
               TablePrinter::num(b.memory_intensity(), 3)});
  }
  t.print(std::cout);

  std::cout << "\nMisses and FP are per 100K instructions (as printed in the "
               "paper).  'activity' and 'mem-int' are the derived power-model "
               "inputs; 'util% (synth)' is what the matched trace generator "
               "delivers over 10 simulated minutes.\n";
  return 0;
}
