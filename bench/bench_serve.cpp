// bench_serve — latency/throughput benchmarks for the always-on thermal
// service (serve/service.hpp), run under concurrent load:
//
//   BM_ServeSteadyQuery            warm-ROM steady T_max latency (p50/p99)
//                                  on the 2-layer Niagara liquid stack
//   BM_ServeSteadyQueryConcurrent  the same query from 4 threads against
//                                  one shared service
//   BM_ServeBatchedWhatIf          16 concurrent what-if queries answered
//                                  through queue batching + lockstep
//   BM_ServeSerialWhatIf           the same 16 cells run one by one through
//                                  solo sessions (the baseline the batched
//                                  path must beat by >= 2x per CI)
//   BM_ServeWireSteadyQuery        the warm-ROM steady query through the
//                                  full wire stack — framed envelope over a
//                                  loopback TCP socket into a ServeServer —
//                                  measured as client round-trip time (the
//                                  acceptance gate is p50 <= 500 us)
//
// The p50_us / p99_us counters on BM_ServeSteadyQuery /
// BM_ServeWireSteadyQuery and the sessions_per_s counters on the what-if
// pair are recorded into BENCH_solver.json and guarded by
// scripts/check_bench_regression.py.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <vector>

#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/service.hpp"
#include "sim/session.hpp"

namespace {

using namespace liquid3d;

/// The acceptance configuration: 2-layer Niagara liquid stack, default grid.
SteadyQuery niagara_steady_query() {
  SteadyQuery q;
  q.config.cooling = CoolingMode::kLiquidMax;
  q.config.layer_pairs = 1;
  q.core_watts = 3.0;
  return q;
}

/// One service shared by every steady benchmark (and every thread): the
/// point is warm-cache latency, not build time.
ThermalService& shared_service() {
  static ThermalService service;
  return service;
}

void BM_ServeSteadyQuery(benchmark::State& state) {
  ThermalService& service = shared_service();
  const SteadyQuery query = niagara_steady_query();
  service.warm(query);  // ROM build paid outside timing

  std::vector<double> lat_us;
  lat_us.reserve(1 << 14);
  for (auto _ : state) {
    const SteadyAnswer answer = service.steady(query);
    benchmark::DoNotOptimize(answer.t_max_c);
    if (!answer.used_rom) state.SkipWithError("expected ROM path");
    lat_us.push_back(answer.elapsed_us);
  }
  std::sort(lat_us.begin(), lat_us.end());
  if (!lat_us.empty()) {
    state.counters["p50_us"] = lat_us[lat_us.size() / 2];
    state.counters["p99_us"] = lat_us[(lat_us.size() * 99) / 100];
  }
}
BENCHMARK(BM_ServeSteadyQuery)->Unit(benchmark::kMicrosecond);

void BM_ServeSteadyQueryConcurrent(benchmark::State& state) {
  ThermalService& service = shared_service();
  const SteadyQuery query = niagara_steady_query();
  if (state.thread_index() == 0) service.warm(query);

  for (auto _ : state) {
    const SteadyAnswer answer = service.steady(query);
    benchmark::DoNotOptimize(answer.t_max_c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeSteadyQueryConcurrent)
    ->Threads(4)
    ->Unit(benchmark::kMicrosecond);

constexpr std::size_t kWhatIfFleet = 16;

WhatIfQuery bench_whatif(std::uint64_t seed) {
  WhatIfQuery q;
  q.scenario = "talb-var";
  q.benchmark = "Web-med";
  q.duration_s = 2.0;
  q.seed = seed;
  q.grid_rows = 8;
  q.grid_cols = 9;
  return q;
}

/// Characterization artifacts (flow LUT, TALB weights) are process-global;
/// pay their build once so both what-if benchmarks time simulation, not
/// characterization.
void warm_characterization() {
  static std::once_flag once;
  std::call_once(once, [] {
    SimulationSession session(ThermalService::session_config(bench_whatif(1)));
    session.init();
  });
}

void BM_ServeBatchedWhatIf(benchmark::State& state) {
  warm_characterization();
  // Rate computed from wall clock by hand: the sessions run on the queue's
  // worker thread while this thread sleeps on futures, so a CPU-time-based
  // Counter::kIsRate would divide by (nearly) zero and overstate the
  // throughput by orders of magnitude.
  double elapsed_s = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    ServeParams params;
    params.queue.max_batch = kWhatIfFleet;
    params.queue.batch_window_ms = 20.0;
    ThermalService service(params);
    std::vector<std::future<SessionOutcome>> futures;
    futures.reserve(kWhatIfFleet);
    for (std::uint64_t seed = 1; seed <= kWhatIfFleet; ++seed) {
      futures.push_back(service.what_if(bench_whatif(seed)));
    }
    double tmax = 0.0;
    for (auto& f : futures) tmax += f.get().result.avg_tmax;
    benchmark::DoNotOptimize(tmax);
    elapsed_s += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  }
  state.SetItemsProcessed(state.iterations() * kWhatIfFleet);
  state.counters["sessions_per_s"] =
      static_cast<double>(state.iterations() * kWhatIfFleet) / elapsed_s;
}
BENCHMARK(BM_ServeBatchedWhatIf)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ServeSerialWhatIf(benchmark::State& state) {
  warm_characterization();
  double elapsed_s = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    double tmax = 0.0;
    for (std::uint64_t seed = 1; seed <= kWhatIfFleet; ++seed) {
      SimulationSession session(
          ThermalService::session_config(bench_whatif(seed)));
      session.init();
      while (session.step()) {
      }
      tmax += session.result().avg_tmax;
    }
    benchmark::DoNotOptimize(tmax);
    elapsed_s += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  }
  state.SetItemsProcessed(state.iterations() * kWhatIfFleet);
  state.counters["sessions_per_s"] =
      static_cast<double>(state.iterations() * kWhatIfFleet) / elapsed_s;
}
BENCHMARK(BM_ServeSerialWhatIf)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ServeWireSteadyQuery(benchmark::State& state) {
  ThermalService& service = shared_service();
  const SteadyQuery query = niagara_steady_query();
  service.warm(query);

  ServeServer server(service);
  server.start(parse_endpoint("127.0.0.1:0", "bench"));
  ServeClient client(server.endpoint());

  // Client-observed round trip: encode + frame + kernel loopback + decode +
  // dispatch + the ROM solve itself, both directions.
  std::vector<double> lat_us;
  lat_us.reserve(1 << 14);
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const SteadyAnswer answer = client.steady(query);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(answer.t_max_c);
    if (!answer.used_rom) state.SkipWithError("expected ROM path");
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(lat_us.begin(), lat_us.end());
  if (!lat_us.empty()) {
    state.counters["p50_us"] = lat_us[lat_us.size() / 2];
    state.counters["p99_us"] = lat_us[(lat_us.size() * 99) / 100];
  }
  server.stop();
}
BENCHMARK(BM_ServeWireSteadyQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
