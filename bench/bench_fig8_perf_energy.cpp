// bench_fig8_perf_energy — reproduces Fig. 8: chip/pump energy and relative
// performance (throughput normalized to LB (Air)) for the key policies.
#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace liquid3d;

  SuiteConfig sc;
  sc.duration = SimTime::from_s(40);
  ExperimentSuite suite(sc);

  // Fig. 8's policy subset.
  const std::vector<PolicyConfig> policies = {
      {Policy::kLoadBalancing, CoolingMode::kAir},
      {Policy::kReactiveMigration, CoolingMode::kAir},
      {Policy::kTalb, CoolingMode::kAir},
      {Policy::kLoadBalancing, CoolingMode::kLiquidMax},
      {Policy::kTalb, CoolingMode::kLiquidVar},
  };
  const std::vector<PolicySummary> results = suite.run(policies, table2_benchmarks());
  const PolicySummary& baseline = find_baseline(results);
  const double e0 = baseline.total_chip_energy();
  const double thr0 = baseline.total_throughput();

  std::cout << "== Fig. 8: performance and energy, 2-layer system ==\n";
  TablePrinter t({"policy", "chip energy (norm)", "pump energy (norm)",
                  "performance (norm)", "migrations"});
  for (const PolicySummary& s : results) {
    std::size_t migrations = 0;
    for (const SimulationResult& r : s.per_workload) migrations += r.migrations;
    t.add_row({s.label + (s.label == "TALB (Var)" ? " *" : ""),
               TablePrinter::num(s.total_chip_energy() / e0, 3),
               TablePrinter::num(s.total_pump_energy() / e0, 3),
               TablePrinter::num(s.total_throughput() / thr0, 4),
               std::to_string(migrations)});
  }
  t.print(std::cout);

  std::cout << "(*) the paper's technique.\n"
               "Shape checks vs the paper: reactive migration loses "
               "throughput on the air system (frequent temperature-triggered "
               "migrations); on liquid-cooled systems the coolant prevents "
               "the hot spots so no migrations occur and throughput matches "
               "LB; TALB (Var) saves energy with no performance cost.\n";
  return 0;
}
