// bench_fig5_flow_requirements — reproduces Fig. 5: the flow rate required
// to cool a given maximum temperature below the 80 C target, for the 2- and
// 4-layer systems.  For each uniform utilization point we report:
//   * T_max observed at the lowest pump setting (the x-axis: "when the
//     maximum temperature is T_max"),
//   * the minimum *discrete* setting meeting the target and its per-cavity
//     flow (the stepped "FR-discrete" series),
//   * the minimum *continuous* per-cavity flow (bisection; the smooth "FR"
//     series).
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "control/characterize.hpp"

int main() {
  using namespace liquid3d;
  constexpr double kTarget = 80.0;

  for (std::size_t pairs : {std::size_t{1}, std::size_t{2}}) {
    const Stack3D stack = make_niagara_stack(pairs, CoolingType::kLiquid);
    ThermalModelParams tp;  // defaults
    CharacterizationHarness h(stack, tp, PowerModelParams{}, PumpModel::laing_ddc(),
                              FlowDeliveryMode::kPressureLimited);

    std::cout << "== Fig. 5 (" << 2 * pairs << "-layer system): flow to cool a given "
              << "T_max below " << kTarget << " C ==\n";
    TablePrinter t({"util", "Tmax@min-flow [C]", "required setting",
                    "FR-discrete [ml/min]", "FR-continuous [ml/min]"});
    CsvWriter csv("fig5_" + std::to_string(2 * pairs) + "layer.csv",
                  {"utilization", "tmax_at_min_flow_c", "required_setting",
                   "fr_discrete_ml_min", "fr_continuous_ml_min"});

    const VolumetricFlow lo = h.delivery()->per_cavity(0) * 0.6;
    const VolumetricFlow hi = h.delivery()->per_cavity(4) * 1.5;

    for (double u = 0.0; u <= 1.001; u += 0.125) {
      const double tmax_min_flow = h.steady_tmax(u, 0);
      std::size_t required = h.setting_count() - 1;
      for (std::size_t s = 0; s < h.setting_count(); ++s) {
        if (h.steady_tmax(u, s) <= kTarget) {
          required = s;
          break;
        }
      }
      const VolumetricFlow continuous = h.min_flow_for_target(u, kTarget, lo, hi);
      t.add_row({TablePrinter::num(u, 3), TablePrinter::num(tmax_min_flow, 1),
                 std::to_string(required + 1),
                 TablePrinter::num(h.delivery()->per_cavity(required).ml_per_min(), 2),
                 TablePrinter::num(continuous.ml_per_min(), 2)});
      csv.add_row({u, tmax_min_flow, static_cast<double>(required + 1),
                   h.delivery()->per_cavity(required).ml_per_min(),
                   continuous.ml_per_min()});
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Paper shape: the required flow is a monotone staircase in the "
               "observed T_max, and the 4-layer system needs more flow than "
               "the 2-layer system at the same T_max (its per-cavity flow is "
               "no larger while it dissipates twice the power).  Series also "
               "written to fig5_2layer.csv / fig5_4layer.csv.\n";
  return 0;
}
