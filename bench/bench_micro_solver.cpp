// bench_micro_solver — engineering micro-benchmarks (google-benchmark) for
// the thermal substrate: banded Cholesky factorization/solve (new engine vs
// the seed row-major baseline), multi-RHS batching, full transient/steady
// model operations, and warm- vs cold-started flow-LUT characterization.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "control/characterize.hpp"
#include "coolant/flow.hpp"
#include "coolant/pump.hpp"
#include "geom/stack.hpp"
#include "reference_row_major_banded.hpp"
#include "thermal/batch_stepper.hpp"
#include "thermal/model3d.hpp"
#include "thermal/solver/banded_spd.hpp"

namespace {

using namespace liquid3d;

BandedSpdMatrix make_grid_matrix(std::size_t n, std::size_t bw) {
  BandedSpdMatrix m(n, bw);
  for (std::size_t i = 0; i < n; ++i) m.add_diagonal(i, 4.0);
  for (std::size_t i = 0; i + 1 < n; ++i) m.add_coupling(i, i + 1, 1.0);
  for (std::size_t i = 0; i + bw < n; ++i) m.add_coupling(i, i + bw, 1.0);
  return m;
}

liquid3d_bench::SeedRowMajorBanded make_seed_matrix(std::size_t n, std::size_t bw) {
  liquid3d_bench::SeedRowMajorBanded m(n, bw);
  for (std::size_t i = 0; i < n; ++i) m.add_diagonal(i, 4.0);
  for (std::size_t i = 0; i + 1 < n; ++i) m.add_coupling(i, i + 1, 1.0);
  for (std::size_t i = 0; i + bw < n; ++i) m.add_coupling(i, i + bw, 1.0);
  return m;
}

void BM_BandedFactorize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bw = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    BandedSpdMatrix m = make_grid_matrix(n, bw);
    m.factorize();
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_BandedFactorize)->Args({1196, 52})->Args({2392, 104})->Args({4784, 208});

void BM_BandedFactorizeSeedBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bw = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    liquid3d_bench::SeedRowMajorBanded m = make_seed_matrix(n, bw);
    m.factorize();
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_BandedFactorizeSeedBaseline)
    ->Args({1196, 52})
    ->Args({2392, 104})
    ->Args({4784, 208});

void BM_BandedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bw = static_cast<std::size_t>(state.range(1));
  BandedSpdMatrix m = make_grid_matrix(n, bw);
  m.factorize();
  std::vector<double> rhs(n, 1.0);
  for (auto _ : state) {
    std::vector<double> x = rhs;
    m.solve(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_BandedSolve)->Args({1196, 52})->Args({2392, 104})->Args({4784, 208});

void BM_BandedSolveSeedBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bw = static_cast<std::size_t>(state.range(1));
  liquid3d_bench::SeedRowMajorBanded m = make_seed_matrix(n, bw);
  m.factorize();
  std::vector<double> rhs(n, 1.0);
  for (auto _ : state) {
    std::vector<double> x = rhs;
    m.solve(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_BandedSolveSeedBaseline)
    ->Args({1196, 52})
    ->Args({2392, 104})
    ->Args({4784, 208});

void BM_BandedSolveMultiRhs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bw = static_cast<std::size_t>(state.range(1));
  const auto nrhs = static_cast<std::size_t>(state.range(2));
  BandedSpdMatrix m = make_grid_matrix(n, bw);
  m.factorize();
  std::vector<double> rhs(n * nrhs, 1.0);
  std::vector<double> x(n * nrhs);
  for (auto _ : state) {
    x = rhs;
    m.solve(std::span<double>(x), nrhs);
    benchmark::DoNotOptimize(x);
  }
  // Per-RHS throughput: compare against BM_BandedSolve to read the batching
  // win directly.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nrhs));
}
BENCHMARK(BM_BandedSolveMultiRhs)
    ->Args({1196, 52, 4})
    ->Args({1196, 52, 16})
    ->Args({4784, 208, 4})
    ->Args({4784, 208, 16});

ThermalModel3D make_backend_model(std::size_t rows, std::size_t cols,
                                  std::size_t pairs, SolverBackend backend) {
  ThermalModelParams p;
  p.grid_rows = rows;
  p.grid_cols = cols;
  p.solver_backend = backend;
  ThermalModel3D m(make_niagara_stack(pairs, CoolingType::kLiquid), p);
  const MicrochannelModel ch(CavitySpec{}, CoolantProperties::water());
  const FlowDelivery d(PumpModel::laing_ddc(), FlowDeliveryMode::kPressureLimited, ch,
                       11.5e-3, 2 * pairs + 1);
  m.set_cavity_flow(d.per_cavity(2));
  const Floorplan& fp = m.stack().layer(0).floorplan;
  std::vector<double> w(fp.block_count(), 0.0);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    if (fp.block(b).type == BlockType::kCore) w[b] = 3.0;
  }
  m.set_block_power(0, w);
  return m;
}

ThermalModel3D make_model(std::size_t rows, std::size_t cols, std::size_t pairs) {
  return make_backend_model(rows, cols, pairs, SolverBackend::kAuto);
}

void BM_TransientStep(benchmark::State& state) {
  ThermalModel3D m = make_model(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)),
                                static_cast<std::size_t>(state.range(2)));
  m.step(0.05);  // prime the factorization
  for (auto _ : state) {
    m.step(0.05);
    benchmark::DoNotOptimize(m.max_temperature());
  }
  state.SetLabel("50ms backward-Euler step incl. fluid march");
}
BENCHMARK(BM_TransientStep)
    ->Args({23, 26, 1})
    ->Args({23, 26, 2})
    ->Args({46, 52, 1});

// Batched transient stepping: N independent models sharing one stack and dt
// advance in lockstep through one factorization (BatchThermalStepper), so
// the per-substep factor stream is read once for the whole batch instead of
// once per scenario.  items = model-steps; compare items/s across the 1/4/16
// rows to read the per-solve batching win (the session/batch-runner layers
// add only per-tick scheduling on top of this hot path).
void BM_BatchedTransient(benchmark::State& state) {
  const auto nsessions = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<ThermalModel3D>> models;
  std::vector<ThermalModel3D*> ptrs;
  for (std::size_t i = 0; i < nsessions; ++i) {
    models.push_back(std::make_unique<ThermalModel3D>(make_model(23, 26, 1)));
    ThermalModel3D& m = *models.back();
    // Distinct power maps: convergence trajectories (and fluid fixed-point
    // depths) differ across the batch, as they do across real scenarios.
    const Floorplan& fp = m.stack().layer(0).floorplan;
    std::vector<double> w(fp.block_count(), 0.0);
    for (std::size_t b = 0; b < fp.block_count(); ++b) {
      if (fp.block(b).type == BlockType::kCore) {
        w[b] = 2.0 + 0.15 * static_cast<double>(i);
      }
    }
    m.set_block_power(0, w);
    ptrs.push_back(&m);
  }
  BatchThermalStepper stepper;
  stepper.step(ptrs, 0.05);  // prime the shared factorization
  for (auto _ : state) {
    stepper.step(ptrs, 0.05);
    benchmark::DoNotOptimize(ptrs.front()->max_temperature());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nsessions));
  state.SetLabel("lockstep 50ms steps, one shared factorization");
}
BENCHMARK(BM_BatchedTransient)->Arg(1)->Arg(4)->Arg(16);

// -- Iterative (PCG) backend --------------------------------------------------
//
// The direct solvers pay O(n b^2) to factorize; at the paper's native
// 100 µm resolution the half-bandwidth b = cols x layers reaches the
// thousands and that cost hits the wall.  The fine-grid rows below
// (200x500 grid, 2 layers: 100k cells per layer, n = 200k nodes, b = 1000)
// are the demonstration case: compare BM_CgTransientStep/200/500 and
// BM_CgSteadyState/200/500 against BM_FineGridDirectFactorize +
// BM_FineGridDirectSolve at the same n and b.  The small rows (46x52, the
// existing largest test grid) feed the CI bench-guard smoke subset.

void BM_CgTransientStep(benchmark::State& state) {
  ThermalModel3D m = make_backend_model(static_cast<std::size_t>(state.range(0)),
                                        static_cast<std::size_t>(state.range(1)),
                                        static_cast<std::size_t>(state.range(2)),
                                        SolverBackend::kPcg);
  // Two power maps a realistic tick alternates between; the perturbation
  // keeps every measured solve doing honest Krylov work (at a fixed power
  // the field converges and warm starts make later steps nearly free —
  // the average would then depend on the iteration count).
  const Floorplan& fp = m.stack().layer(0).floorplan;
  std::vector<double> hi(fp.block_count(), 0.0);
  std::vector<double> lo(fp.block_count(), 0.0);
  for (std::size_t b = 0; b < fp.block_count(); ++b) {
    if (fp.block(b).type == BlockType::kCore) {
      hi[b] = 3.3;
      lo[b] = 2.7;
    }
  }
  // Settle out of the cold start so the timing loop measures the sustained
  // regime, not an amortized share of the initial equilibration.
  for (int i = 0; i < 50; ++i) m.step(0.05);
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    m.set_block_power(0, flip ? hi : lo);
    m.step(0.05);
    benchmark::DoNotOptimize(m.max_temperature());
  }
  state.SetLabel("sustained 50ms step (power toggling) via warm-started IC(0)-PCG");
}
BENCHMARK(BM_CgTransientStep)->Args({46, 52, 1})->Args({200, 500, 1});

void BM_CgSteadyState(benchmark::State& state) {
  ThermalModel3D m = make_backend_model(static_cast<std::size_t>(state.range(0)),
                                        static_cast<std::size_t>(state.range(1)), 1,
                                        SolverBackend::kPcg);
  for (auto _ : state) {
    m.initialize(45.0);
    m.solve_steady_state();
    benchmark::DoNotOptimize(m.max_temperature());
  }
  state.SetLabel("pseudo-transient continuation, PCG-solved steps");
}
BENCHMARK(BM_CgSteadyState)
    ->Args({46, 52})
    ->Args({200, 500})
    ->Unit(benchmark::kMillisecond);

// The direct-solver cost at the same fine-grid shape (n = 200k, b = 1000) —
// what the banded backend would pay for one factorization and one
// back-substitution there.  Kept out of the CI smoke subset (a single
// factorization runs tens of seconds); run_bench.sh records it so the JSON
// carries the direct-vs-iterative crossover evidence.
void BM_FineGridDirectFactorize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bw = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    BandedSpdMatrix m = make_grid_matrix(n, bw);
    m.factorize();
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_FineGridDirectFactorize)
    ->Args({200000, 1000})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_FineGridDirectSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bw = static_cast<std::size_t>(state.range(1));
  BandedSpdMatrix m = make_grid_matrix(n, bw);
  m.factorize();
  std::vector<double> rhs(n, 1.0);
  std::vector<double> x(n);
  for (auto _ : state) {
    x = rhs;
    m.solve(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FineGridDirectSolve)
    ->Args({200000, 1000})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

void BM_SteadyState(benchmark::State& state) {
  ThermalModel3D m = make_model(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)), 1);
  for (auto _ : state) {
    m.initialize(45.0);
    m.solve_steady_state();
    benchmark::DoNotOptimize(m.max_temperature());
  }
}
BENCHMARK(BM_SteadyState)->Args({12, 13})->Args({23, 26});

// Vector-flow steady solves: the per-cavity generalization rebuilds the
// fluid-eliminated system with one capacity rate per cavity.  arg2 = 0 runs
// the uniform broadcast (the pre-vector baseline cost), arg2 = 1 a skewed
// vector at the same total flow (valve-network operating point), so the
// JSON tracks the assembly cost of the vector path against uniform.
void BM_SteadyStatePerCavity(benchmark::State& state) {
  ThermalModel3D m = make_model(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)), 1);
  const bool skewed = state.range(2) != 0;
  const MicrochannelModel ch(CavitySpec{}, CoolantProperties::water());
  const FlowDelivery d(PumpModel::laing_ddc(), FlowDeliveryMode::kPressureLimited, ch,
                       11.5e-3, 3);
  const VolumetricFlow f = d.per_cavity(2);
  // Alternate between two operating points so every iteration pays the full
  // rebuild (assembly + factorization + solve) — a fixed flow would be a
  // cache hit after the first solve and hide the assembly cost.
  const std::vector<VolumetricFlow> skew_a = {f * 1.4, f * 1.0, f * 0.6};
  const std::vector<VolumetricFlow> skew_b = {f * 0.6, f * 1.0, f * 1.4};
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    if (skewed) {
      m.set_cavity_flow(flip ? skew_a : skew_b);  // same total as uniform
    } else {
      m.set_cavity_flow(flip ? f : f * 1.02);
    }
    m.initialize(45.0);
    m.solve_steady_state();
    benchmark::DoNotOptimize(m.max_temperature());
  }
  state.SetLabel(skewed ? "per-cavity flow vector (skewed, equal total)"
                        : "uniform broadcast baseline");
}
BENCHMARK(BM_SteadyStatePerCavity)->Args({23, 26, 0})->Args({23, 26, 1});

// Full flow-LUT characterization (the acceptance workload: 25 utilization
// points x all pump settings).  `fast` is the production configuration —
// direct fluid-eliminated steady solver, fused leakage iteration,
// warm-started, sampled over the thread pool; the baseline replicates the
// seed behaviour: pseudo-transient continuation, outer leakage fixed
// point, serial sweep.
void characterization_pass(bool fast, std::size_t threads, std::size_t points) {
  ThermalModelParams p;  // paper-default grid
  p.direct_steady_solver = fast;
  const Stack3D stack = make_2layer_system();
  auto factory = [&]() {
    auto h = std::make_unique<CharacterizationHarness>(
        stack, p, PowerModelParams{}, PumpModel::laing_ddc(),
        FlowDeliveryMode::kPressureLimited);
    h->set_warm_start(fast);
    h->set_fused_leakage(fast);
    return h;
  };
  const FlowLut lut = characterize_flow_lut(factory, 78.0, points, threads);
  benchmark::DoNotOptimize(lut.setting_count());
}

void BM_FlowLutCharacterization(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  const auto threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    characterization_pass(fast, threads, 25);
  }
  state.SetLabel(fast ? "solver engine: direct steady + warm start + pool"
                      : "seed behaviour: pseudo-transient, serial");
}
BENCHMARK(BM_FlowLutCharacterization)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({1, 0})  // 0 = hardware concurrency
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
